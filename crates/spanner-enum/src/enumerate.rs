//! Polynomial-delay enumeration of sequential vset-automata (Theorem 2.5).
//!
//! [`Enumerator`] walks the mappings of `VAW(d)` one by one, without
//! duplicates and without dead ends: a partial choice of per-position
//! operation sets is extended only when a reachability certificate (computed
//! on the [`MatchGraph`]) guarantees that it completes to an accepted
//! mapping. The delay between two consecutive mappings is therefore bounded
//! by a polynomial in the document and the automaton for any fixed number of
//! variables — see DESIGN.md §2 for how this substitutes for the
//! combined-complexity algorithm of Amarilli et al. that the paper cites.

use crate::matchgraph::MatchGraph;
use crate::opset::OpSet;
use spanner_core::{Arena, Document, FxHashMap, Mapping, MappingSet, SpannerError, SpannerResult};
use spanner_vset::{CompiledVsa, StateSet, Vsa};

/// A lazily evaluated stream of the mappings of `VAW(d)`.
///
/// The DFS re-visits the same `(position, frontier)` pairs over and over —
/// every mapping sharing a prefix re-derives the identical candidate list.
/// Candidate lists are therefore computed once per distinct pair and stored
/// in an append-only store (`cand_store`); frames hold indices
/// into it, so descending a step is a hash lookup instead of an op-closure
/// exploration, and no candidate state set is ever cloned on the hot path.
/// Frontier scratch sets recycle through a per-document
/// [`spanner_core::Arena`].
pub struct Enumerator<'a> {
    graph: MatchGraph<'a>,
    /// DFS stack; one frame per document position on the current path.
    stack: Vec<Frame>,
    /// The operation sets chosen on the current path (parallel to `stack`).
    path: Vec<(u32, OpSet)>,
    finished: bool,
    /// Memoized candidate lists, one per distinct `(position, frontier)`
    /// pair (append-only; frames index into it).
    cand_store: Vec<Vec<(OpSet, StateSet)>>,
    /// `memo[pos]`: frontier after consuming the letter at `pos` → index of
    /// the candidate list for position `pos + 1`.
    memo: Vec<FxHashMap<StateSet, u32>>,
    /// Per candidate list: whether the continuation from it is *forced* —
    /// a unique, op-free chain all the way to acceptance (see
    /// [`Enumerator::tail_forced`]). Parallel to `cand_store`.
    tail: Vec<Tail>,
    /// Position of each candidate list (parallel to `cand_store`; 1-based
    /// like [`Frame::pos`]).
    cand_pos: Vec<u32>,
    /// Recycled frontier scratch sets.
    arena: Arena<StateSet>,
}

/// Memoized forced-tail status of one candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tail {
    Unknown,
    Forced,
    Branching,
}

struct Frame {
    /// Position of this frame (1-based; `|d| + 1` is the final frame).
    pos: u32,
    /// Index of this position's candidate list in the store.
    cand: u32,
    /// Index of the next candidate to try.
    next: usize,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator for `VAW(d)`, compiling the automaton on the
    /// fly.
    ///
    /// Fails if the automaton is not sequential or has too many variables for
    /// the bitset representation. To evaluate the same automaton on many
    /// documents, compile once with [`CompiledVsa::compile`] and use
    /// [`Enumerator::from_compiled`].
    pub fn new(vsa: &'a Vsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::with_graph(MatchGraph::build(vsa, doc)?)
    }

    /// Creates an enumerator over an already-compiled automaton (the
    /// compile-once, evaluate-many path).
    pub fn from_compiled(compiled: &'a CompiledVsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::with_graph(MatchGraph::from_compiled(compiled, doc)?)
    }

    fn with_graph(graph: MatchGraph<'a>) -> SpannerResult<Self> {
        let n = graph.doc.len();
        let mut e = Enumerator {
            graph,
            stack: Vec::new(),
            path: Vec::new(),
            finished: false,
            cand_store: Vec::new(),
            memo: Vec::new(),
            tail: Vec::new(),
            cand_pos: Vec::new(),
            arena: Arena::new(),
        };
        if e.graph.is_nonempty() {
            e.memo = vec![FxHashMap::default(); n + 1];
            let compiled = e.graph.compiled();
            let initial = StateSet::from_states(compiled.state_count(), [compiled.initial()]);
            let candidates = e.graph.op_closures(1, &initial);
            e.cand_store.push(candidates);
            e.tail.push(Tail::Unknown);
            e.cand_pos.push(1);
            e.stack.push(Frame {
                pos: 1,
                cand: 0,
                next: 0,
            });
        } else {
            e.finished = true;
        }
        Ok(e)
    }

    /// The match graph driving the enumeration.
    pub fn graph(&self) -> &MatchGraph<'a> {
        &self.graph
    }

    fn next_mapping(&mut self) -> Option<SpannerResult<Mapping>> {
        if self.finished {
            return None;
        }
        let n = self.graph.doc.len() as u32;
        loop {
            let Some(frame) = self.stack.last() else {
                self.finished = true;
                return None;
            };
            let (pos, cand, i) = (frame.pos, frame.cand as usize, frame.next);
            if i >= self.cand_store[cand].len() {
                // Backtrack.
                self.stack.pop();
                self.path.pop();
                continue;
            }
            self.stack.last_mut().expect("frame present").next += 1;
            let set = self.cand_store[cand][i].0;
            // Record the choice (replacing any previous choice at this depth).
            self.path.truncate(self.stack.len() - 1);
            self.path.push((pos, set));

            if pos == n + 1 {
                // Complete mapping.
                return Some(self.graph.ops.mapping_from_positions(&self.path));
            }
            // Consume the letter at `pos` and descend. The reached frontier
            // determines the candidate list at `pos + 1`; compute it once
            // per distinct frontier and reuse it ever after.
            let next_cand = self.descend(pos, cand, i);
            if self.tail_forced(next_cand, n) {
                // The subtree below holds exactly one mapping and the
                // forced chain adds no variable operations: the mapping is
                // already determined by the path, so emit it without
                // walking the suffix frame by frame.
                return Some(self.graph.ops.mapping_from_positions(&self.path));
            }
            self.stack.push(Frame {
                pos: pos + 1,
                cand: next_cand,
                next: 0,
            });
        }
    }

    /// Consumes the letter at `pos` from candidate `(cand, i)`'s state set
    /// and returns the id of the candidate list at `pos + 1`, computing and
    /// memoizing it on the first visit to that `(position, frontier)` pair.
    fn descend(&mut self, pos: u32, cand: usize, i: usize) -> u32 {
        let states = self.graph.compiled().state_count();
        let mut next_states = self.arena.take_or(|| StateSet::new(states));
        self.graph
            .advance_into(pos, &self.cand_store[cand][i].1, &mut next_states);
        debug_assert!(
            !next_states.is_empty(),
            "candidate op-sets are viability-checked"
        );
        match self.memo[pos as usize].get(&next_states) {
            Some(&id) => {
                self.arena.put(next_states);
                id
            }
            None => {
                let candidates = self.graph.op_closures(pos + 1, &next_states);
                debug_assert!(
                    !candidates.is_empty(),
                    "viable prefixes always have a continuation"
                );
                let id = self.cand_store.len() as u32;
                self.cand_store.push(candidates);
                self.tail.push(Tail::Unknown);
                self.cand_pos.push(pos + 1);
                self.memo[pos as usize].insert(next_states, id);
                id
            }
        }
    }

    /// Whether the continuation from candidate list `cand` is *forced*:
    /// every list on the chain ahead is a single op-free candidate, ending
    /// at position `n + 1` (acceptance is implied — candidate lists are
    /// viability-checked against the co-accessible sets). A forced subtree
    /// holds exactly one mapping and contributes no variable operations, so
    /// the enumerator can emit at the head of the chain instead of pushing
    /// one frame per remaining position. Memoized per candidate list: each
    /// chain is walked once per document, which turns the per-mapping
    /// suffix walk (the dominant cost on `.*…​.*`-shaped extractors) into
    /// an O(1) lookup.
    fn tail_forced(&mut self, cand: u32, n: u32) -> bool {
        let mut chain = Vec::new();
        let mut cur = cand;
        let forced = loop {
            match self.tail[cur as usize] {
                Tail::Forced => break true,
                Tail::Branching => break false,
                Tail::Unknown => {}
            }
            chain.push(cur);
            let list = &self.cand_store[cur as usize];
            if list.len() != 1 || !list[0].0.is_empty() {
                break false;
            }
            let pos = self.cand_pos[cur as usize];
            if pos == n + 1 {
                break true;
            }
            cur = self.descend(pos, cur as usize, 0);
        };
        let status = if forced {
            Tail::Forced
        } else {
            Tail::Branching
        };
        for id in chain {
            self.tail[id as usize] = status;
        }
        forced
    }
}

impl<'a> Iterator for Enumerator<'a> {
    type Item = SpannerResult<Mapping>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_mapping()
    }
}

/// Enumerates `VAW(d)` into a materialized [`MappingSet`].
///
/// Prefer [`Enumerator`] when the result may be large.
pub fn evaluate(vsa: &Vsa, doc: &Document) -> SpannerResult<MappingSet> {
    let mappings: Vec<Mapping> = Enumerator::new(vsa, doc)?.collect::<SpannerResult<_>>()?;
    Ok(MappingSet::from_mappings(mappings))
}

/// Enumerates `VAW(d)` for an already-compiled automaton.
pub fn evaluate_compiled(compiled: &CompiledVsa, doc: &Document) -> SpannerResult<MappingSet> {
    let mappings: Vec<Mapping> =
        enumerate_compiled(compiled, doc)?.collect::<SpannerResult<_>>()?;
    Ok(MappingSet::from_mappings(mappings))
}

/// The iterator-shaped counterpart of [`evaluate_compiled`]: a lazy,
/// duplicate-free, polynomial-delay mapping stream over an already-compiled
/// automaton. This is the enumeration entry point the physical operator
/// executor in `spanner-algebra` pulls from; it is [`Enumerator::from_compiled`]
/// under a function name symmetric with the evaluate family.
pub fn enumerate_compiled<'a>(
    compiled: &'a CompiledVsa,
    doc: &'a Document,
) -> SpannerResult<Enumerator<'a>> {
    Enumerator::from_compiled(compiled, doc)
}

/// Whether `VAW(d)` is nonempty (polynomial time; Theorem 2.5's
/// nonemptiness).
pub fn is_nonempty(vsa: &Vsa, doc: &Document) -> SpannerResult<bool> {
    Ok(MatchGraph::build(vsa, doc)?.is_nonempty())
}

/// Counts the mappings of `VAW(d)` by enumeration, stopping at `limit`.
///
/// Returns `Ok(count)` with `count ≤ limit`; a result equal to `limit` means
/// "at least `limit`".
pub fn count_mappings(vsa: &Vsa, doc: &Document, limit: usize) -> SpannerResult<usize> {
    let e = Enumerator::new(vsa, doc)?;
    let mut count = 0usize;
    for m in e {
        m?;
        count += 1;
        if count >= limit {
            break;
        }
    }
    Ok(count)
}

/// Convenience: evaluates a regex formula by compiling it to a VA and
/// enumerating (the production counterpart of
/// `spanner_rgx::reference_eval`).
pub fn evaluate_rgx(alpha: &spanner_rgx::Rgx, doc: &Document) -> SpannerResult<MappingSet> {
    if !spanner_rgx::is_sequential(alpha) {
        return Err(SpannerError::requirement(
            "sequential",
            format!("regex formula {alpha} is not sequential"),
        ));
    }
    evaluate(&spanner_vset::compile(alpha), doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_rgx::{parse, reference_eval};
    use spanner_vset::compile;

    /// The compiled + enumerated pipeline must agree with the reference
    /// evaluator.
    fn assert_agrees(pattern: &str, texts: &[&str]) {
        let alpha = parse(pattern).unwrap();
        let vsa = compile(&alpha);
        for text in texts {
            let doc = Document::new(*text);
            let expected = reference_eval(&alpha, &doc);
            let actual = evaluate(&vsa, &doc).unwrap();
            assert_eq!(actual, expected, "mismatch for {pattern:?} on {text:?}");
        }
    }

    #[test]
    fn simple_patterns() {
        assert_agrees("a*", &["", "a", "aa", "b"]);
        assert_agrees("{x:a*}b", &["b", "ab", "aab", ""]);
        assert_agrees(".*{x:a+}.*", &["baab", "a", "", "bbb"]);
        assert_agrees("({x:a})?{y:b}", &["ab", "b", "a"]);
        assert_agrees("{x:a}|{y:a}", &["a"]);
    }

    #[test]
    fn schemaless_extraction() {
        assert_agrees(
            r"({first:\l+} )?{last:\l+}( {phone:\d+})?",
            &["bob smith 42", "smith", "ann lee", "x 1"],
        );
    }

    #[test]
    fn empty_document_and_empty_language() {
        assert_agrees("a", &[""]);
        assert_agrees("()", &["", "a"]);
        assert_agrees("[]", &["", "a"]);
        assert_agrees("{x:()}", &["", "a"]);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        // A deliberately ambiguous automaton: many runs produce the same
        // mapping, but each mapping must be reported exactly once.
        let alpha = parse("(a|a)*{x:(a|a)*}(a|a)*").unwrap();
        let vsa = compile(&alpha);
        let doc = Document::new("aaaa");
        let mappings: Vec<Mapping> = Enumerator::new(&vsa, &doc)
            .unwrap()
            .map(|m| m.unwrap())
            .collect();
        let unique: std::collections::BTreeSet<_> = mappings.iter().cloned().collect();
        assert_eq!(mappings.len(), unique.len(), "duplicates produced");
        // x ranges over all 15 spans of "aaaa".
        assert_eq!(mappings.len(), 15);
    }

    #[test]
    fn nonemptiness_and_counting() {
        let vsa = compile(&parse("{x:a+}b").unwrap());
        assert!(is_nonempty(&vsa, &Document::new("aab")).unwrap());
        assert!(!is_nonempty(&vsa, &Document::new("ba")).unwrap());
        assert_eq!(count_mappings(&vsa, &Document::new("aab"), 100).unwrap(), 1);

        let many = compile(&parse(".*{x:.*}.*").unwrap());
        // |d| = 4 ⇒ 15 spans.
        assert_eq!(
            count_mappings(&many, &Document::new("abcd"), 100).unwrap(),
            15
        );
        // The limit caps the work.
        assert_eq!(count_mappings(&many, &Document::new("abcd"), 7).unwrap(), 7);
    }

    #[test]
    fn lazy_iteration_yields_incrementally() {
        let vsa = compile(&parse(".*{x:.*}.*").unwrap());
        let doc = Document::new("a".repeat(40));
        let mut e = Enumerator::new(&vsa, &doc).unwrap();
        // Pull just a few mappings from a large result set.
        for _ in 0..5 {
            assert!(e.next().is_some());
        }
    }

    #[test]
    fn evaluate_rgx_matches_reference() {
        let alpha = parse(r".*{w:\w+}.*").unwrap();
        let doc = Document::new("ab cd");
        assert_eq!(
            evaluate_rgx(&alpha, &doc).unwrap(),
            reference_eval(&alpha, &doc)
        );
        // Non-sequential formulas are rejected.
        let bad = parse("({x:a})*").unwrap();
        assert!(evaluate_rgx(&bad, &doc).is_err());
    }

    #[test]
    fn larger_document_smoke_test() {
        // A realistic-ish extractor over a 2 KB document; just check that
        // enumeration terminates and produces a plausible count.
        let vsa = compile(&parse(r".* {kv:\w+=\d+} .*").unwrap());
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!(" key{i}={i} "));
        }
        let doc = Document::new(text);
        let count = count_mappings(&vsa, &doc, usize::MAX).unwrap();
        assert!(count >= 100, "found {count}");
    }
}
