//! Polynomial-delay enumeration of sequential vset-automata (Theorem 2.5).
//!
//! [`Enumerator`] walks the mappings of `VAW(d)` one by one, without
//! duplicates and without dead ends: a partial choice of per-position
//! operation sets is extended only when a reachability certificate (computed
//! on the [`MatchGraph`]) guarantees that it completes to an accepted
//! mapping. The delay between two consecutive mappings is therefore bounded
//! by a polynomial in the document and the automaton for any fixed number of
//! variables — see DESIGN.md §2 for how this substitutes for the
//! combined-complexity algorithm of Amarilli et al. that the paper cites.

use crate::matchgraph::MatchGraph;
use crate::opset::OpSet;
use spanner_core::{Document, Mapping, MappingSet, SpannerError, SpannerResult};
use spanner_vset::{CompiledVsa, StateSet, Vsa};

/// A lazily evaluated stream of the mappings of `VAW(d)`.
pub struct Enumerator<'a> {
    graph: MatchGraph<'a>,
    /// DFS stack; one frame per document position on the current path.
    stack: Vec<Frame>,
    /// The operation sets chosen on the current path (parallel to `stack`).
    path: Vec<(u32, OpSet)>,
    finished: bool,
}

struct Frame {
    /// Position of this frame (1-based; `|d| + 1` is the final frame).
    pos: u32,
    /// Candidate operation sets at this position, each with the automaton
    /// states reached after performing it.
    candidates: Vec<(OpSet, StateSet)>,
    /// Index of the next candidate to try.
    next: usize,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator for `VAW(d)`, compiling the automaton on the
    /// fly.
    ///
    /// Fails if the automaton is not sequential or has too many variables for
    /// the bitset representation. To evaluate the same automaton on many
    /// documents, compile once with [`CompiledVsa::compile`] and use
    /// [`Enumerator::from_compiled`].
    pub fn new(vsa: &'a Vsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::with_graph(MatchGraph::build(vsa, doc)?)
    }

    /// Creates an enumerator over an already-compiled automaton (the
    /// compile-once, evaluate-many path).
    pub fn from_compiled(compiled: &'a CompiledVsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::with_graph(MatchGraph::from_compiled(compiled, doc)?)
    }

    fn with_graph(graph: MatchGraph<'a>) -> SpannerResult<Self> {
        let mut e = Enumerator {
            graph,
            stack: Vec::new(),
            path: Vec::new(),
            finished: false,
        };
        if e.graph.is_nonempty() {
            let compiled = e.graph.compiled();
            let initial = StateSet::from_states(compiled.state_count(), [compiled.initial()]);
            let candidates = e.graph.op_closures(1, &initial);
            e.stack.push(Frame {
                pos: 1,
                candidates,
                next: 0,
            });
        } else {
            e.finished = true;
        }
        Ok(e)
    }

    /// The match graph driving the enumeration.
    pub fn graph(&self) -> &MatchGraph<'a> {
        &self.graph
    }

    fn next_mapping(&mut self) -> Option<SpannerResult<Mapping>> {
        if self.finished {
            return None;
        }
        let n = self.graph.doc.len() as u32;
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.finished = true;
                return None;
            };
            if frame.next >= frame.candidates.len() {
                // Backtrack.
                self.stack.pop();
                self.path.pop();
                continue;
            }
            let pos = frame.pos;
            let (set, states) = frame.candidates[frame.next].clone();
            frame.next += 1;
            // Record the choice (replacing any previous choice at this depth).
            self.path.truncate(self.stack.len() - 1);
            self.path.push((pos, set));

            if pos == n + 1 {
                // Complete mapping.
                return Some(self.graph.ops.mapping_from_positions(&self.path));
            }
            // Consume the letter at `pos` and descend.
            let next_states = self.graph.advance(pos, &states);
            debug_assert!(
                !next_states.is_empty(),
                "candidate op-sets are viability-checked"
            );
            let candidates = self.graph.op_closures(pos + 1, &next_states);
            debug_assert!(
                !candidates.is_empty(),
                "viable prefixes always have a continuation"
            );
            self.stack.push(Frame {
                pos: pos + 1,
                candidates,
                next: 0,
            });
        }
    }
}

impl<'a> Iterator for Enumerator<'a> {
    type Item = SpannerResult<Mapping>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_mapping()
    }
}

/// Enumerates `VAW(d)` into a materialized [`MappingSet`].
///
/// Prefer [`Enumerator`] when the result may be large.
pub fn evaluate(vsa: &Vsa, doc: &Document) -> SpannerResult<MappingSet> {
    let mappings: Vec<Mapping> = Enumerator::new(vsa, doc)?.collect::<SpannerResult<_>>()?;
    Ok(MappingSet::from_mappings(mappings))
}

/// Enumerates `VAW(d)` for an already-compiled automaton.
pub fn evaluate_compiled(compiled: &CompiledVsa, doc: &Document) -> SpannerResult<MappingSet> {
    let mappings: Vec<Mapping> =
        enumerate_compiled(compiled, doc)?.collect::<SpannerResult<_>>()?;
    Ok(MappingSet::from_mappings(mappings))
}

/// The iterator-shaped counterpart of [`evaluate_compiled`]: a lazy,
/// duplicate-free, polynomial-delay mapping stream over an already-compiled
/// automaton. This is the enumeration entry point the physical operator
/// executor in `spanner-algebra` pulls from; it is [`Enumerator::from_compiled`]
/// under a function name symmetric with the evaluate family.
pub fn enumerate_compiled<'a>(
    compiled: &'a CompiledVsa,
    doc: &'a Document,
) -> SpannerResult<Enumerator<'a>> {
    Enumerator::from_compiled(compiled, doc)
}

/// Whether `VAW(d)` is nonempty (polynomial time; Theorem 2.5's
/// nonemptiness).
pub fn is_nonempty(vsa: &Vsa, doc: &Document) -> SpannerResult<bool> {
    Ok(MatchGraph::build(vsa, doc)?.is_nonempty())
}

/// Counts the mappings of `VAW(d)` by enumeration, stopping at `limit`.
///
/// Returns `Ok(count)` with `count ≤ limit`; a result equal to `limit` means
/// "at least `limit`".
pub fn count_mappings(vsa: &Vsa, doc: &Document, limit: usize) -> SpannerResult<usize> {
    let e = Enumerator::new(vsa, doc)?;
    let mut count = 0usize;
    for m in e {
        m?;
        count += 1;
        if count >= limit {
            break;
        }
    }
    Ok(count)
}

/// Convenience: evaluates a regex formula by compiling it to a VA and
/// enumerating (the production counterpart of
/// `spanner_rgx::reference_eval`).
pub fn evaluate_rgx(alpha: &spanner_rgx::Rgx, doc: &Document) -> SpannerResult<MappingSet> {
    if !spanner_rgx::is_sequential(alpha) {
        return Err(SpannerError::requirement(
            "sequential",
            format!("regex formula {alpha} is not sequential"),
        ));
    }
    evaluate(&spanner_vset::compile(alpha), doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_rgx::{parse, reference_eval};
    use spanner_vset::compile;

    /// The compiled + enumerated pipeline must agree with the reference
    /// evaluator.
    fn assert_agrees(pattern: &str, texts: &[&str]) {
        let alpha = parse(pattern).unwrap();
        let vsa = compile(&alpha);
        for text in texts {
            let doc = Document::new(*text);
            let expected = reference_eval(&alpha, &doc);
            let actual = evaluate(&vsa, &doc).unwrap();
            assert_eq!(actual, expected, "mismatch for {pattern:?} on {text:?}");
        }
    }

    #[test]
    fn simple_patterns() {
        assert_agrees("a*", &["", "a", "aa", "b"]);
        assert_agrees("{x:a*}b", &["b", "ab", "aab", ""]);
        assert_agrees(".*{x:a+}.*", &["baab", "a", "", "bbb"]);
        assert_agrees("({x:a})?{y:b}", &["ab", "b", "a"]);
        assert_agrees("{x:a}|{y:a}", &["a"]);
    }

    #[test]
    fn schemaless_extraction() {
        assert_agrees(
            r"({first:\l+} )?{last:\l+}( {phone:\d+})?",
            &["bob smith 42", "smith", "ann lee", "x 1"],
        );
    }

    #[test]
    fn empty_document_and_empty_language() {
        assert_agrees("a", &[""]);
        assert_agrees("()", &["", "a"]);
        assert_agrees("[]", &["", "a"]);
        assert_agrees("{x:()}", &["", "a"]);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        // A deliberately ambiguous automaton: many runs produce the same
        // mapping, but each mapping must be reported exactly once.
        let alpha = parse("(a|a)*{x:(a|a)*}(a|a)*").unwrap();
        let vsa = compile(&alpha);
        let doc = Document::new("aaaa");
        let mappings: Vec<Mapping> = Enumerator::new(&vsa, &doc)
            .unwrap()
            .map(|m| m.unwrap())
            .collect();
        let unique: std::collections::BTreeSet<_> = mappings.iter().cloned().collect();
        assert_eq!(mappings.len(), unique.len(), "duplicates produced");
        // x ranges over all 15 spans of "aaaa".
        assert_eq!(mappings.len(), 15);
    }

    #[test]
    fn nonemptiness_and_counting() {
        let vsa = compile(&parse("{x:a+}b").unwrap());
        assert!(is_nonempty(&vsa, &Document::new("aab")).unwrap());
        assert!(!is_nonempty(&vsa, &Document::new("ba")).unwrap());
        assert_eq!(count_mappings(&vsa, &Document::new("aab"), 100).unwrap(), 1);

        let many = compile(&parse(".*{x:.*}.*").unwrap());
        // |d| = 4 ⇒ 15 spans.
        assert_eq!(
            count_mappings(&many, &Document::new("abcd"), 100).unwrap(),
            15
        );
        // The limit caps the work.
        assert_eq!(count_mappings(&many, &Document::new("abcd"), 7).unwrap(), 7);
    }

    #[test]
    fn lazy_iteration_yields_incrementally() {
        let vsa = compile(&parse(".*{x:.*}.*").unwrap());
        let doc = Document::new("a".repeat(40));
        let mut e = Enumerator::new(&vsa, &doc).unwrap();
        // Pull just a few mappings from a large result set.
        for _ in 0..5 {
            assert!(e.next().is_some());
        }
    }

    #[test]
    fn evaluate_rgx_matches_reference() {
        let alpha = parse(r".*{w:\w+}.*").unwrap();
        let doc = Document::new("ab cd");
        assert_eq!(
            evaluate_rgx(&alpha, &doc).unwrap(),
            reference_eval(&alpha, &doc)
        );
        // Non-sequential formulas are rejected.
        let bad = parse("({x:a})*").unwrap();
        assert!(evaluate_rgx(&bad, &doc).is_err());
    }

    #[test]
    fn larger_document_smoke_test() {
        // A realistic-ish extractor over a 2 KB document; just check that
        // enumeration terminates and produces a plausible count.
        let vsa = compile(&parse(r".* {kv:\w+=\d+} .*").unwrap());
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!(" key{i}={i} "));
        }
        let doc = Document::new(text);
        let count = count_mappings(&vsa, &doc, usize::MAX).unwrap();
        assert!(count >= 100, "found {count}");
    }
}
