//! Polynomial-delay enumeration for sequential vset-automata.
//!
//! This crate provides the evaluation black box that the paper's upper
//! bounds compose with (Theorem 2.5): given a *sequential* vset-automaton
//! `A` and a document `d`, enumerate the mappings of `VAW(d)` one by one,
//! without duplicates, with delay polynomial in the input for any bounded
//! number of capture variables.
//!
//! * [`MatchGraph`] — the `(position, state)` graph of `A` on `d` with
//!   co-accessibility information and per-position operation-set closures;
//! * [`Enumerator`] — the lazy, duplicate-free, dead-end-free mapping stream;
//! * [`evaluate`], [`is_nonempty`], [`count_mappings`], [`evaluate_rgx`] —
//!   convenience entry points.
//!
//! # Example
//!
//! ```
//! use spanner_core::Document;
//! use spanner_enum::evaluate_rgx;
//! use spanner_rgx::parse;
//!
//! let alpha = parse(r".*{word:\l+}.*").unwrap();
//! let doc = Document::new("ab!c");
//! let words = evaluate_rgx(&alpha, &doc).unwrap();
//! // "ab", "a", "b", "c" — every lowercase substring.
//! assert_eq!(words.len(), 4);
//! ```

pub mod enumerate;
pub mod matchgraph;
pub mod opset;

pub use enumerate::{
    count_mappings, enumerate_compiled, evaluate, evaluate_compiled, evaluate_rgx, is_nonempty,
    Enumerator,
};
pub use matchgraph::MatchGraph;
pub use opset::{OpSet, OpTable, MAX_VARS};
