//! Compact representation of sets of variable operations.

use spanner_core::{Span, SpannerError, SpannerResult, VarSet, Variable};
use std::collections::BTreeMap;

/// Maximum number of variables a single automaton may use with the bitset
/// representation (open + close bits must fit into a `u64`).
pub const MAX_VARS: usize = 32;

/// A set of variable operations (`x⊢` / `⊣x`), stored as a bitmask.
///
/// Bit `2i` is the *open* operation of variable `i`, bit `2i + 1` its *close*
/// operation, where `i` is the index of the variable in the sorted variable
/// list of the automaton ([`OpTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OpSet(pub u64);

impl OpSet {
    /// The empty operation set.
    pub const EMPTY: OpSet = OpSet(0);

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the set contains the given bit.
    #[inline]
    pub fn contains(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    /// Adds a bit.
    #[inline]
    pub fn with(self, bit: u64) -> OpSet {
        OpSet(self.0 | bit)
    }

    /// Number of operations in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// Maps the variables of an automaton to operation-bit indices.
#[derive(Debug, Clone)]
pub struct OpTable {
    vars: Vec<Variable>,
}

impl OpTable {
    /// Builds the table for a variable set.
    ///
    /// Fails if there are more than [`MAX_VARS`] variables.
    pub fn new(vars: &VarSet) -> SpannerResult<OpTable> {
        if vars.len() > MAX_VARS {
            return Err(SpannerError::LimitExceeded {
                what: "variables per automaton (bitset operation sets)",
                limit: MAX_VARS,
                actual: vars.len(),
            });
        }
        Ok(OpTable {
            vars: vars.to_vec(),
        })
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The bit for the open operation of `x`, if `x` is known.
    pub fn open_bit(&self, x: &Variable) -> Option<u64> {
        self.index(x).map(|i| 1u64 << (2 * i))
    }

    /// The bit for the close operation of `x`, if `x` is known.
    pub fn close_bit(&self, x: &Variable) -> Option<u64> {
        self.index(x).map(|i| 1u64 << (2 * i + 1))
    }

    /// The index of a variable.
    pub fn index(&self, x: &Variable) -> Option<usize> {
        self.vars.binary_search(x).ok()
    }

    /// The variables in index order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Reconstructs a [`spanner_core::Mapping`] from the positions at which
    /// each operation of a run was performed.
    ///
    /// `ops_at` lists, for every document position, the operation set
    /// performed there. Returns an error if an open operation has no matching
    /// close (which cannot happen for accepting runs of sequential automata).
    pub fn mapping_from_positions(
        &self,
        ops_at: &[(u32, OpSet)],
    ) -> SpannerResult<spanner_core::Mapping> {
        let mut opens: BTreeMap<usize, u32> = BTreeMap::new();
        let mut closes: BTreeMap<usize, u32> = BTreeMap::new();
        for &(pos, set) in ops_at {
            for (i, _) in self.vars.iter().enumerate() {
                if set.contains(1u64 << (2 * i)) {
                    opens.insert(i, pos);
                }
                if set.contains(1u64 << (2 * i + 1)) {
                    closes.insert(i, pos);
                }
            }
        }
        let mut mapping = spanner_core::Mapping::new();
        for (i, open_pos) in &opens {
            match closes.get(i) {
                Some(close_pos) if close_pos >= open_pos => {
                    mapping.insert(self.vars[*i].clone(), Span::new(*open_pos, *close_pos));
                }
                _ => {
                    return Err(SpannerError::Invalid(format!(
                        "variable {} opened at {} but not properly closed",
                        self.vars[*i], open_pos
                    )))
                }
            }
        }
        if closes.keys().any(|i| !opens.contains_key(i)) {
            return Err(SpannerError::Invalid(
                "a variable was closed without being opened".to_string(),
            ));
        }
        Ok(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::Mapping;

    #[test]
    fn bit_assignment_is_stable() {
        let vars = VarSet::from_iter(["b", "a", "c"]);
        let table = OpTable::new(&vars).unwrap();
        // Sorted order: a, b, c.
        assert_eq!(table.open_bit(&"a".into()), Some(1));
        assert_eq!(table.close_bit(&"a".into()), Some(2));
        assert_eq!(table.open_bit(&"b".into()), Some(4));
        assert_eq!(table.open_bit(&"z".into()), None);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn too_many_variables_rejected() {
        let vars: VarSet = (0..40).map(|i| Variable::new(format!("v{i:02}"))).collect();
        assert!(OpTable::new(&vars).is_err());
    }

    #[test]
    fn opset_operations() {
        let s = OpSet::EMPTY.with(1).with(4);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(OpSet::EMPTY.is_empty());
    }

    #[test]
    fn mapping_reconstruction() {
        let vars = VarSet::from_iter(["x", "y"]);
        let table = OpTable::new(&vars).unwrap();
        let xo = table.open_bit(&"x".into()).unwrap();
        let xc = table.close_bit(&"x".into()).unwrap();
        let yo = table.open_bit(&"y".into()).unwrap();
        let yc = table.close_bit(&"y".into()).unwrap();
        let ops = vec![
            (1, OpSet::EMPTY.with(xo)),
            (3, OpSet::EMPTY.with(xc).with(yo).with(yc)),
        ];
        let m = table.mapping_from_positions(&ops).unwrap();
        assert_eq!(
            m,
            Mapping::from_pairs([("x", Span::new(1, 3)), ("y", Span::new(3, 3))])
        );

        // Unclosed variable is an error.
        let bad = vec![(1, OpSet::EMPTY.with(xo))];
        assert!(table.mapping_from_positions(&bad).is_err());
    }
}
