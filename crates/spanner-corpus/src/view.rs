//! Maintained per-query result views with delta propagation.
//!
//! A [`QueryView`] memoizes one prepared query's per-document relations,
//! keyed by each document's content hash. Re-running the query through
//! [`CorpusEngine::evaluate_delta`] then touches only the documents whose
//! hash differs from the retained entry (appended, updated, deleted, or
//! evicted ones) and merges the retained relations for everything else —
//! the semi-naive shape: after `k` mutations a repeat query costs `O(k)`
//! document evaluations, not `O(n)`.
//!
//! **Soundness.** An entry is reused only when the stored hash equals the
//! document's current content hash, and a spanner's result is a pure
//! function of document content — so every reused relation is exactly what
//! re-evaluation would produce (up to hash collisions, which the store's
//! 64-bit FNV-1a makes vanishingly unlikely; see DESIGN.md §11). Every
//! other document — absent entry, hash mismatch, or budget-evicted — is
//! re-evaluated from scratch. No generation bookkeeping or changed-list is
//! needed for correctness; the hash comparison alone decides.
//!
//! The view is bounded: retained relations are charged `mappings + 1`
//! against a byte-free cost budget, entries that would exceed it are simply
//! not retained (and re-evaluated next time). Budget `0` therefore retains
//! nothing — every evaluation is cold — which the differential oracle uses
//! to pin the delta path against the full scan.

use crate::{
    effective_threads, eval_doc, shard_ranges, CorpusEngine, CorpusResult, CorpusStats, DocOutcome,
};
use spanner_core::{Document, MappingSet, SpannerResult};
use std::time::Instant;

/// One retained entry: the document's content hash at evaluation time and
/// the relation it produced.
type ViewEntry = Option<(u64, MappingSet)>;

/// A maintained result view for one prepared query over one corpus:
/// per-document memoized relations keyed by content hash, behind a bounded
/// retention budget.
#[derive(Debug, Clone, Default)]
pub struct QueryView {
    /// Indexed like the corpus; `None` = not retained (never evaluated,
    /// or evicted by the budget).
    entries: Vec<ViewEntry>,
    /// Retention budget in cost units ([`QueryView::cost`] per entry).
    budget: usize,
    /// Cost of the currently retained entries.
    retained_cost: usize,
    /// Store generation the view was last synchronized against — advisory
    /// (freshness is decided per document by hash), surfaced for
    /// observability.
    generation: u64,
}

impl QueryView {
    /// An empty view with the given retention budget. Budget `0` retains
    /// nothing (every evaluation is cold).
    pub fn new(budget: usize) -> QueryView {
        QueryView {
            entries: Vec::new(),
            budget,
            retained_cost: 0,
            generation: 0,
        }
    }

    /// An empty view with an effectively unlimited budget.
    pub fn unbounded() -> QueryView {
        QueryView::new(usize::MAX)
    }

    /// The retention budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Cost of the currently retained entries (≤ budget).
    pub fn retained_cost(&self) -> usize {
        self.retained_cost
    }

    /// Number of retained (hash, relation) entries.
    pub fn retained_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The store generation recorded at the last synchronization
    /// ([`QueryView::set_generation`]); purely informational.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records the store generation this view now reflects.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Drops every retained entry (the budget is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.retained_cost = 0;
    }

    /// Retention cost of one relation. `+1` so even empty relations have
    /// non-zero cost: a zero budget retains nothing at all.
    fn cost(set: &MappingSet) -> usize {
        set.len() + 1
    }

    /// Resizes the entry table to the corpus: new slots start unretained,
    /// entries past the end (the corpus shrank) are released.
    fn resize(&mut self, len: usize) {
        while self.entries.len() > len {
            if let Some(Some((_, set))) = self.entries.pop() {
                self.retained_cost -= Self::cost(&set);
            }
        }
        if self.entries.len() < len {
            self.entries.resize_with(len, || None);
        }
    }

    /// Retains `set` for document `idx` under `hash` if the budget allows;
    /// a previously retained entry for the slot is released either way.
    fn store(&mut self, idx: usize, hash: u64, set: &MappingSet) {
        let slot = &mut self.entries[idx];
        if let Some((_, old)) = slot.take() {
            self.retained_cost -= Self::cost(&old);
        }
        let cost = Self::cost(set);
        // Subtraction form: `retained_cost + cost` could overflow near a
        // `usize::MAX` budget; `retained_cost <= budget` is an invariant.
        if cost <= self.budget - self.retained_cost {
            *slot = Some((hash, set.clone()));
            self.retained_cost += cost;
        }
    }
}

/// The outcome of one delta evaluation: the full-corpus result (identical
/// to a cold evaluation) plus how much of it was served from the view.
#[derive(Debug)]
pub struct DeltaOutcome {
    /// Per-document relations for the whole corpus, in corpus order, plus
    /// aggregate stats — bit-identical to
    /// [`CorpusEngine::evaluate_with_threads`].
    pub output: CorpusResult,
    /// Documents *not* served from the view (absent, hash-changed, or
    /// evicted entries) — the documents the delta pass had to look at.
    pub delta_docs: usize,
    /// Documents whose retained relation was reused.
    pub view_hits: usize,
    /// Retained entries discarded because the document's hash changed —
    /// a subset of `delta_docs`.
    pub invalidated: usize,
}

/// Splits the sorted id list `items` by membership in the sorted id list
/// `set`: `(members, non_members)`.
fn split_by_membership(items: &[u32], set: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut members = Vec::new();
    let mut non_members = Vec::new();
    let mut j = 0;
    for &i in items {
        while j < set.len() && set[j] < i {
            j += 1;
        }
        if j < set.len() && set[j] == i {
            members.push(i);
        } else {
            non_members.push(i);
        }
    }
    (members, non_members)
}

impl CorpusEngine {
    /// Evaluates the corpus *incrementally* against a maintained
    /// [`QueryView`]: documents whose content hash matches their retained
    /// entry reuse the memoized relation; every other document (the
    /// *delta*) is re-evaluated and its entry refreshed. Results cover the
    /// whole corpus in order and are bit-identical to
    /// [`CorpusEngine::evaluate_with_threads`] for every thread count and
    /// budget.
    ///
    /// `hashes` must hold one content hash per document (the store
    /// maintains them; `spanner_store::fnv1a64` is the reference
    /// implementation). `candidates`, when given, must be a *sound*
    /// sorted candidate set for this query over the current corpus (every
    /// document with a non-empty result is in it — the shape
    /// `spanner_store::Store::candidates` produces): delta documents
    /// outside it are recorded as empty without being read, so a cold view
    /// over an indexed store stays as cheap as the indexed scan.
    pub fn evaluate_delta(
        &self,
        docs: &[Document],
        hashes: &[u64],
        candidates: Option<&[u32]>,
        view: &mut QueryView,
        threads: usize,
    ) -> SpannerResult<DeltaOutcome> {
        let start = Instant::now();
        assert_eq!(docs.len(), hashes.len(), "one content hash per document");
        view.resize(docs.len());
        let mut slots: Vec<Option<MappingSet>> = vec![None; docs.len()];
        let mut view_hits = 0;
        let mut invalidated = 0;
        let mut misses: Vec<u32> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            match &view.entries[i] {
                Some((hash, set)) if *hash == hashes[i] => {
                    *slot = Some(set.clone());
                    view_hits += 1;
                }
                Some(_) => {
                    invalidated += 1;
                    misses.push(i as u32);
                }
                None => misses.push(i as u32),
            }
        }
        let delta_docs = misses.len();
        // Index pruning applies to the delta only: a missed document
        // outside a sound candidate set is provably result-free.
        let (to_eval, pruned) = match candidates {
            Some(set) => split_by_membership(&misses, set),
            None => (misses, Vec::new()),
        };
        for &i in &pruned {
            let empty = MappingSet::new();
            view.store(i as usize, hashes[i as usize], &empty);
            slots[i as usize] = Some(empty);
        }
        // Evaluate the remaining delta, sharding the miss list (not the
        // corpus): the work is proportional to the delta, so that is what
        // balances.
        let threads = effective_threads(threads, to_eval.len());
        type Evaluated = Vec<(u32, (SpannerResult<MappingSet>, DocOutcome))>;
        let evaluated: Evaluated;
        let workers = if threads <= 1 {
            evaluated = to_eval
                .iter()
                .map(|&i| (i, eval_doc(self.plan(), &docs[i as usize])))
                .collect();
            1
        } else {
            let ranges = shard_ranges(to_eval.len(), threads);
            let outcomes: Vec<Evaluated> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|range| {
                        let chunk = &to_eval[range.clone()];
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&i| (i, eval_doc(self.plan(), &docs[i as usize])))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("corpus worker panicked"))
                    .collect()
            });
            let workers = outcomes.len();
            evaluated = outcomes.into_iter().flatten().collect();
            workers
        };
        let mut docs_skipped = pruned.len();
        let mut docs_rejected = 0;
        for (i, (result, outcome)) in evaluated {
            match outcome {
                DocOutcome::Skipped => docs_skipped += 1,
                DocOutcome::Rejected => docs_rejected += 1,
                DocOutcome::Evaluated => {}
            }
            let set = result?;
            view.store(i as usize, hashes[i as usize], &set);
            slots[i as usize] = Some(set);
        }
        let results: Vec<MappingSet> = slots
            .into_iter()
            .map(|s| s.expect("every document was filled"))
            .collect();
        let stats = CorpusStats {
            documents: docs.len(),
            bytes: docs.iter().map(Document::len).sum(),
            mappings: results.iter().map(MappingSet::len).sum(),
            matched_documents: results.iter().filter(|r| !r.is_empty()).count(),
            threads: workers,
            docs_skipped,
            docs_rejected,
            elapsed: start.elapsed(),
        };
        Ok(DeltaOutcome {
            output: CorpusResult { results, stats },
            delta_docs,
            view_hits,
            invalidated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_algebra::{Instantiation, RaOptions, RaTree};

    fn engine(pattern: &str) -> CorpusEngine {
        let inst = Instantiation::new().with(0, spanner_rgx::parse(pattern).unwrap());
        CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap()
    }

    fn hash(doc: &Document) -> u64 {
        // Local FNV-1a 64 mirror of `spanner_store::fnv1a64` (this crate
        // sits below the store and cannot depend on it).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in doc.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn hashes(docs: &[Document]) -> Vec<u64> {
        docs.iter().map(hash).collect()
    }

    #[test]
    fn warm_view_serves_everything_from_retained_entries() {
        let e = engine("{x:a+}");
        let docs: Vec<Document> = ["aa", "b", "a", "", "aaa"]
            .iter()
            .map(|t| Document::new(*t))
            .collect();
        let h = hashes(&docs);
        let full = e.evaluate_with_threads(&docs, 2).unwrap();
        let mut view = QueryView::unbounded();
        let cold = e.evaluate_delta(&docs, &h, None, &mut view, 2).unwrap();
        assert_eq!(cold.output.results, full.results);
        assert_eq!(cold.delta_docs, docs.len());
        assert_eq!(cold.view_hits, 0);
        assert_eq!(view.retained_entries(), docs.len());
        let warm = e.evaluate_delta(&docs, &h, None, &mut view, 2).unwrap();
        assert_eq!(warm.output.results, full.results);
        assert_eq!(warm.delta_docs, 0);
        assert_eq!(warm.view_hits, docs.len());
        assert_eq!(warm.invalidated, 0);
    }

    #[test]
    fn changed_documents_are_invalidated_and_reevaluated() {
        let e = engine("{x:a+}");
        let mut docs: Vec<Document> = ["aa", "b", "a"].iter().map(|t| Document::new(*t)).collect();
        let mut view = QueryView::unbounded();
        let h = hashes(&docs);
        e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
        // Mutate one document, append another.
        docs[1] = Document::new("aaaa");
        docs.push(Document::new("a"));
        let h = hashes(&docs);
        let out = e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
        let full = e.evaluate_with_threads(&docs, 1).unwrap();
        assert_eq!(out.output.results, full.results);
        assert_eq!(out.delta_docs, 2); // the update and the append
        assert_eq!(out.invalidated, 1); // only the update had an entry
        assert_eq!(out.view_hits, 2);
    }

    #[test]
    fn zero_budget_view_is_always_cold() {
        let e = engine("{x:a+}");
        let docs: Vec<Document> = ["aa", "b"].iter().map(|t| Document::new(*t)).collect();
        let h = hashes(&docs);
        let mut view = QueryView::new(0);
        for _ in 0..2 {
            let out = e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
            assert_eq!(out.view_hits, 0);
            assert_eq!(out.delta_docs, docs.len());
            assert_eq!(view.retained_entries(), 0);
            assert_eq!(view.retained_cost(), 0);
        }
    }

    #[test]
    fn budget_bounds_retained_cost() {
        let e = engine("{x:a+}");
        let docs: Vec<Document> = (0..10).map(|_| Document::new("aa")).collect();
        let h = hashes(&docs);
        // Each entry costs 1 mapping + 1 = 2; a budget of 5 retains 2.
        let mut view = QueryView::new(5);
        e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
        assert!(view.retained_cost() <= 5);
        assert_eq!(view.retained_entries(), 2);
        let out = e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
        assert_eq!(out.view_hits, 2);
        assert_eq!(out.delta_docs, 8);
        let full = e.evaluate_with_threads(&docs, 1).unwrap();
        assert_eq!(out.output.results, full.results);
    }

    #[test]
    fn shrinking_corpus_releases_tail_entries() {
        let e = engine("{x:a+}");
        let docs: Vec<Document> = (0..5).map(|_| Document::new("a")).collect();
        let h = hashes(&docs);
        let mut view = QueryView::unbounded();
        e.evaluate_delta(&docs, &h, None, &mut view, 1).unwrap();
        let cost_before = view.retained_cost();
        let short = &docs[..2];
        let out = e
            .evaluate_delta(short, &h[..2], None, &mut view, 1)
            .unwrap();
        assert_eq!(out.view_hits, 2);
        assert_eq!(out.output.results.len(), 2);
        assert_eq!(view.retained_entries(), 2);
        assert!(view.retained_cost() < cost_before);
    }

    #[test]
    fn candidate_pruning_applies_to_cold_misses() {
        let e = engine(".*needle{x: .*}.*");
        let docs: Vec<Document> = (0..20)
            .map(|i| {
                if i % 5 == 0 {
                    Document::new(format!("needle {i}"))
                } else {
                    Document::new(format!("hay {i}"))
                }
            })
            .collect();
        let h = hashes(&docs);
        let candidates: Vec<u32> = (0..20).step_by(5).collect();
        let mut view = QueryView::unbounded();
        let out = e
            .evaluate_delta(&docs, &h, Some(&candidates), &mut view, 2)
            .unwrap();
        let full = e.evaluate_with_threads(&docs, 2).unwrap();
        assert_eq!(out.output.results, full.results);
        // Pruned misses are skipped without being read — and still cached,
        // so the next pass serves them as hits.
        assert!(out.output.stats.docs_skipped >= 16);
        let warm = e
            .evaluate_delta(&docs, &h, Some(&candidates), &mut view, 2)
            .unwrap();
        assert_eq!(warm.view_hits, docs.len());
        assert_eq!(warm.delta_docs, 0);
    }

    #[test]
    fn split_by_membership_partitions() {
        let (m, n) = split_by_membership(&[1, 3, 5, 9], &[0, 3, 4, 9, 11]);
        assert_eq!(m, vec![3, 9]);
        assert_eq!(n, vec![1, 5]);
        let (m, n) = split_by_membership(&[], &[1]);
        assert!(m.is_empty() && n.is_empty());
        let (m, n) = split_by_membership(&[2, 4], &[]);
        assert!(m.is_empty());
        assert_eq!(n, vec![2, 4]);
    }

    #[test]
    fn errors_propagate_and_poison_nothing() {
        let mut parts = Vec::new();
        for i in 0..=spanner_enum::MAX_VARS {
            parts.push(format!("{{v{i:02}:a?}}"));
        }
        let e = engine(&parts.concat());
        let docs = vec![Document::new("aaa")];
        let h = hashes(&docs);
        let mut view = QueryView::unbounded();
        assert!(e.evaluate_delta(&docs, &h, None, &mut view, 1).is_err());
    }
}
