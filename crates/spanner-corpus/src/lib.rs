//! Parallel multi-document evaluation of compiled RA plans.
//!
//! The paper treats a spanner as a function from one document to a relation;
//! production workloads apply the same query to a *corpus*. This crate adds
//! that batch layer on top of `spanner-algebra`:
//!
//! * [`CorpusEngine`] compiles an instantiated RA tree **once** into a
//!   [`CompiledPlan`] (optimized by the `spanner-algebra::plan` rewriter by
//!   default, lowered onto the physical operator executor of
//!   `spanner-algebra::exec`) and then evaluates it over any number of
//!   documents — every worker runs the same operator pipeline as
//!   single-document evaluation and SpannerQL;
//! * [`CorpusEngine::evaluate_with_threads`] shards the corpus across a
//!   scoped thread pool. The lowered plan is read-only after compilation
//!   (`CompiledPlan: Sync`), so every worker evaluates against the *same*
//!   shared operator tree and compiled automata — no per-thread
//!   compilation, no locking on the hot path. Results are returned **in
//!   corpus order** and are bit-identical for every thread count (each
//!   document is evaluated independently);
//! * [`CorpusResult`] carries the per-document relations plus aggregate
//!   [`CorpusStats`].
//!
//! ```
//! use spanner_algebra::{Instantiation, RaOptions, RaTree};
//! use spanner_core::Document;
//! use spanner_corpus::CorpusEngine;
//!
//! let tree = RaTree::leaf(0);
//! let inst = Instantiation::new().with(0, spanner_rgx::parse("{x:a+}").unwrap());
//! let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
//! let docs = vec![Document::new("aaa"), Document::new("b"), Document::new("a")];
//! let out = engine.evaluate_with_threads(&docs, 2).unwrap();
//! assert_eq!(out.results.len(), 3);
//! assert_eq!(out.stats.documents, 3);
//! assert!(out.results[1].is_empty());
//! ```

use spanner_algebra::{CompiledPlan, ExecTrace, Instantiation, PreScan, RaOptions, RaTree};
use spanner_core::{Document, MappingSet, SpannerResult};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod pool;
pub mod view;

pub use pool::{resolve_pool_threads, WorkerPool};
pub use view::{DeltaOutcome, QueryView};

/// Aggregate statistics of one corpus evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of documents evaluated.
    pub documents: usize,
    /// Total corpus size in bytes.
    pub bytes: usize,
    /// Total number of extracted mappings, over all documents.
    pub mappings: usize,
    /// Number of documents with at least one mapping.
    pub matched_documents: usize,
    /// Number of worker threads actually used.
    pub threads: usize,
    /// Documents skipped by the scan fast path's static prefilters
    /// (length / prefix-class / required-factor checks) without touching
    /// the match automaton. Always `0` when
    /// [`RaOptions::scan_fast_path`] is disabled.
    pub docs_skipped: usize,
    /// Documents rejected by the boolean match pre-pass (lazy DFA or NFA
    /// frontier stepping) after the static prefilters passed. Always `0`
    /// when [`RaOptions::scan_fast_path`] is disabled.
    pub docs_rejected: usize,
    /// Wall-clock time of the evaluation (excluding plan compilation).
    pub elapsed: Duration,
}

impl CorpusStats {
    /// Corpus throughput in bytes per second (0 when nothing was timed).
    pub fn bytes_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 / secs
        } else {
            0.0
        }
    }
}

/// The outcome of evaluating a corpus: one relation per document, in corpus
/// order, plus aggregate statistics.
#[derive(Debug)]
pub struct CorpusResult {
    /// Per-document results, indexed like the input corpus.
    pub results: Vec<MappingSet>,
    /// Aggregate statistics.
    pub stats: CorpusStats,
}

/// A compiled RA query ready to be evaluated over many documents.
pub struct CorpusEngine {
    plan: CompiledPlan,
}

/// What happened to one document: evaluated through the operator pipeline,
/// or proven empty by the scan fast path before evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DocOutcome {
    Evaluated,
    Skipped,
    Rejected,
}

/// One per-document result slot, tagged with its fast-path outcome so the
/// aggregate [`CorpusStats`] counters are exact.
type DocSlot = Option<(SpannerResult<MappingSet>, DocOutcome)>;

/// Evaluates one document, consulting the plan's document-level pre-pass
/// first. A `Skip`/`Reject` verdict is a proof the result is empty, so the
/// returned relation is bit-identical to a full evaluation.
fn eval_doc(plan: &CompiledPlan, doc: &Document) -> (SpannerResult<MappingSet>, DocOutcome) {
    match plan.prescan_reject(doc) {
        Some(PreScan::Skip) => (Ok(MappingSet::new()), DocOutcome::Skipped),
        Some(PreScan::Reject) => (Ok(MappingSet::new()), DocOutcome::Rejected),
        _ => (plan.evaluate(doc), DocOutcome::Evaluated),
    }
}

/// [`eval_doc`] with per-operator instrumentation: documents the pre-pass
/// proves empty never reach the executor, so they surface as corpus-level
/// counters on the root trace node (`corpus_docs_skipped` /
/// `corpus_docs_rejected`); evaluated documents merge their full
/// per-operator trace into the worker's accumulator.
fn eval_doc_traced(
    plan: &CompiledPlan,
    doc: &Document,
    trace: &mut ExecTrace,
) -> (SpannerResult<MappingSet>, DocOutcome) {
    match plan.prescan_reject(doc) {
        Some(PreScan::Skip) => {
            trace.add("corpus_docs_skipped", 1);
            (Ok(MappingSet::new()), DocOutcome::Skipped)
        }
        Some(PreScan::Reject) => {
            trace.add("corpus_docs_rejected", 1);
            (Ok(MappingSet::new()), DocOutcome::Rejected)
        }
        _ => {
            let (result, doc_trace) = plan.evaluate_traced(doc);
            trace.merge(&doc_trace);
            trace.add("corpus_docs_evaluated", 1);
            (result, DocOutcome::Evaluated)
        }
    }
}

/// Contiguous per-worker shards of `0..len`: disjoint, in order, and
/// covering every index exactly once — the per-shard document counts sum
/// exactly to the corpus size (unit-tested below). Both evaluation paths
/// shard through this one function so their partitions agree.
fn shard_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(threads.max(1)).max(1);
    (0..len)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(len))
        .collect()
}

/// Partitions `0..len` into **exactly** `shards` contiguous, in-order
/// ranges whose sizes differ by at most one (the first `len % shards`
/// ranges carry the extra document). Unlike the internal per-worker split
/// above, trailing ranges may be empty — a shard topology is fixed while
/// a corpus can be arbitrarily small — and the range count always equals
/// `shards`, which is what the serve-layer router needs to address
/// backends positionally. `shards == 0` is treated as one shard.
pub fn partition_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1);
    let base = len / shards;
    let extra = len % shards;
    let mut start = 0;
    (0..shards)
        .map(|shard| {
            let size = base + usize::from(shard < extra);
            let range = start..start + size;
            start += size;
            range
        })
        .collect()
}

/// The document partition of a sharded corpus: which shard owns which
/// contiguous slice of global document ids.
///
/// Global ids are corpus-order line numbers; each shard holds one
/// contiguous slice, so locating a document is a prefix-sum walk and
/// merging per-shard results back into corpus order is pure
/// concatenation — the property the serve-layer router's bit-identity
/// guarantee rests on. Appends always grow the **last** shard, keeping
/// every earlier slice (and therefore every existing id) stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Documents per shard, in shard order.
    sizes: Vec<usize>,
}

impl ShardMap {
    /// A map over explicit per-shard document counts (one entry per
    /// shard; entries may be zero). An empty `sizes` means one empty
    /// shard, so the invariant "at least one shard" always holds.
    pub fn new(sizes: Vec<usize>) -> ShardMap {
        ShardMap {
            sizes: if sizes.is_empty() { vec![0] } else { sizes },
        }
    }

    /// The balanced contiguous partition of `len` documents over
    /// `shards`, mirroring [`partition_ranges`].
    pub fn partition(len: usize, shards: usize) -> ShardMap {
        ShardMap::new(
            partition_ranges(len, shards)
                .iter()
                .map(|r| r.len())
                .collect(),
        )
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.sizes.len()
    }

    /// Total documents across every shard.
    pub fn len(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Documents on `shard`.
    pub fn size(&self, shard: usize) -> usize {
        self.sizes[shard]
    }

    /// The global id of `shard`'s first document (its corpus-order base
    /// offset — the prefix sum of every earlier shard).
    pub fn base(&self, shard: usize) -> usize {
        self.sizes[..shard].iter().sum()
    }

    /// Locates a global document id: `(shard, local id)` — or `None`
    /// when `id` is past the corpus.
    pub fn locate(&self, id: usize) -> Option<(usize, usize)> {
        let mut offset = id;
        for (shard, &size) in self.sizes.iter().enumerate() {
            if offset < size {
                return Some((shard, offset));
            }
            offset -= size;
        }
        None
    }

    /// Records `count` documents appended to the last shard.
    pub fn append(&mut self, count: usize) {
        *self.sizes.last_mut().expect("at least one shard") += count;
    }
}

/// Turns filled slots into a [`CorpusResult`], aggregating the fast-path
/// counters and the relation statistics.
fn collect_result(
    docs: &[Document],
    threads: usize,
    slots: Vec<DocSlot>,
    start: Instant,
) -> SpannerResult<CorpusResult> {
    let mut docs_skipped = 0;
    let mut docs_rejected = 0;
    let mut results = Vec::with_capacity(docs.len());
    for slot in slots {
        let (result, outcome) = slot.expect("every document was evaluated");
        match outcome {
            DocOutcome::Skipped => docs_skipped += 1,
            DocOutcome::Rejected => docs_rejected += 1,
            DocOutcome::Evaluated => {}
        }
        results.push(result?);
    }
    let stats = CorpusStats {
        documents: docs.len(),
        bytes: docs.iter().map(Document::len).sum(),
        mappings: results.iter().map(MappingSet::len).sum(),
        matched_documents: results.iter().filter(|r| !r.is_empty()).count(),
        threads,
        docs_skipped,
        docs_rejected,
        elapsed: start.elapsed(),
    };
    Ok(CorpusResult { results, stats })
}

/// `CompiledPlan` is read-only after compilation; the engine shares it with
/// every worker thread by reference.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<CorpusEngine>();
};

impl CorpusEngine {
    /// Optimizes and compiles an instantiated RA tree into an engine.
    pub fn compile(
        tree: &RaTree,
        inst: &Instantiation,
        options: RaOptions,
    ) -> SpannerResult<CorpusEngine> {
        Ok(CorpusEngine {
            plan: CompiledPlan::compile(tree, inst, options)?,
        })
    }

    /// Wraps an already-compiled plan.
    pub fn from_plan(plan: CompiledPlan) -> CorpusEngine {
        CorpusEngine { plan }
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    /// Evaluates the corpus with one worker per available CPU.
    pub fn evaluate(&self, docs: &[Document]) -> SpannerResult<CorpusResult> {
        self.evaluate_with_threads(docs, 0)
    }

    /// Evaluates the corpus with an explicit worker count (`0` = one worker
    /// per available CPU). The per-document results are identical for every
    /// `threads` value; only the wall-clock time changes.
    pub fn evaluate_with_threads(
        &self,
        docs: &[Document],
        threads: usize,
    ) -> SpannerResult<CorpusResult> {
        let start = Instant::now();
        let threads = effective_threads(threads, docs.len());
        let mut slots: Vec<DocSlot> = vec![None; docs.len()];
        let workers = if threads <= 1 {
            for (slot, doc) in slots.iter_mut().zip(docs) {
                *slot = Some(eval_doc(&self.plan, doc));
            }
            1
        } else {
            // Contiguous shards, one per worker: results land directly in
            // their corpus position, so no reordering pass is needed.
            let ranges = shard_ranges(docs.len(), threads);
            std::thread::scope(|scope| {
                let mut rest: &mut [DocSlot] = &mut slots;
                for range in &ranges {
                    let (slot_chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let doc_chunk = &docs[range.clone()];
                    scope.spawn(move || {
                        for (slot, doc) in slot_chunk.iter_mut().zip(doc_chunk) {
                            *slot = Some(eval_doc(&self.plan, doc));
                        }
                    });
                }
            });
            // Rounding in `shard_ranges` can produce fewer shards than the
            // clamped request (10 docs / 8 threads → chunks of 2 → 5
            // shards); report the workers that actually ran.
            ranges.len()
        };
        collect_result(docs, workers, slots, start)
    }

    /// [`CorpusEngine::evaluate_with_threads`] with per-operator
    /// instrumentation: returns the corpus result together with one
    /// [`ExecTrace`] aggregated over every document — per-document traces
    /// merge into per-worker accumulators (all seeded from the same
    /// [`PhysicalPlan::trace_skeleton`](spanner_algebra::PhysicalPlan),
    /// so shapes always agree) and the workers' traces merge at the end.
    /// The relations and stats are bit-identical to the untraced path for
    /// every thread count; only wall time differs. This is a separate
    /// evaluation loop, so the untraced path pays nothing for it.
    pub fn evaluate_traced_with_threads(
        &self,
        docs: &[Document],
        threads: usize,
    ) -> SpannerResult<(CorpusResult, ExecTrace)> {
        let start = Instant::now();
        let threads = effective_threads(threads, docs.len());
        let skeleton = self.plan.physical().trace_skeleton();
        let mut slots: Vec<DocSlot> = vec![None; docs.len()];
        let mut trace = skeleton.clone();
        let workers = if threads <= 1 {
            for (slot, doc) in slots.iter_mut().zip(docs) {
                *slot = Some(eval_doc_traced(&self.plan, doc, &mut trace));
            }
            1
        } else {
            let ranges = shard_ranges(docs.len(), threads);
            let worker_traces: Vec<ExecTrace> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(ranges.len());
                let mut rest: &mut [DocSlot] = &mut slots;
                for range in &ranges {
                    let (slot_chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let doc_chunk = &docs[range.clone()];
                    let mut worker_trace = skeleton.clone();
                    handles.push(scope.spawn(move || {
                        for (slot, doc) in slot_chunk.iter_mut().zip(doc_chunk) {
                            *slot = Some(eval_doc_traced(&self.plan, doc, &mut worker_trace));
                        }
                        worker_trace
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("corpus worker panicked"))
                    .collect()
            });
            for worker_trace in &worker_traces {
                trace.merge(worker_trace);
            }
            ranges.len()
        };
        let result = collect_result(docs, workers, slots, start)?;
        Ok((result, trace))
    }

    /// Evaluates only the `candidates` subset of the corpus — the
    /// index-aware path: a corpus-level index (e.g. the trigram index of
    /// `spanner-store`) has already proven every other document's result
    /// empty, so non-candidates are counted as `docs_skipped` **without
    /// being visited** (no byte of theirs is read). Results are returned
    /// for the whole corpus, in corpus order, and are bit-identical to
    /// [`CorpusEngine::evaluate_with_threads`] whenever the candidate set
    /// is sound (it contains every document with a non-empty result).
    ///
    /// `candidates` must be sorted, duplicate-free, in-bounds document
    /// indexes — the shape a posting-list intersection produces (a
    /// duplicate would be evaluated twice and double-counted in the
    /// stats).
    pub fn evaluate_candidates_with_threads(
        &self,
        docs: &[Document],
        candidates: &[u32],
        threads: usize,
    ) -> SpannerResult<CorpusResult> {
        let start = Instant::now();
        // The result is assembled directly, not through the per-document
        // slot machinery of the full scan: the whole point of the index is
        // that per-query cost tracks the candidate count, so the
        // non-candidate majority must cost one empty relation each and
        // nothing more (an empty `MappingSet` does not allocate).
        let mut results: Vec<MappingSet> = std::iter::repeat_with(MappingSet::new)
            .take(docs.len())
            .collect();
        let threads = effective_threads(threads, candidates.len());
        // One evaluated candidate: (document index, (result, outcome)).
        type Evaluated = Vec<(u32, (SpannerResult<MappingSet>, DocOutcome))>;
        let mut evaluated: Evaluated;
        let workers = if threads <= 1 {
            evaluated = candidates
                .iter()
                .map(|&i| (i, eval_doc(&self.plan, &docs[i as usize])))
                .collect();
            1
        } else {
            // Shard the candidate list (not the corpus): the work is
            // proportional to candidates, so that is what balances.
            let ranges = shard_ranges(candidates.len(), threads);
            let outcomes: Vec<Evaluated> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|range| {
                        let chunk = &candidates[range.clone()];
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&i| (i, eval_doc(&self.plan, &docs[i as usize])))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("corpus worker panicked"))
                    .collect()
            });
            let workers = outcomes.len();
            evaluated = outcomes.into_iter().flatten().collect();
            workers
        };
        // Non-candidates are skipped by construction — without being read.
        let mut docs_skipped = docs.len() - candidates.len();
        let mut docs_rejected = 0;
        for (i, (result, outcome)) in evaluated.drain(..) {
            match outcome {
                DocOutcome::Skipped => docs_skipped += 1,
                DocOutcome::Rejected => docs_rejected += 1,
                DocOutcome::Evaluated => {}
            }
            results[i as usize] = result?;
        }
        let stats = CorpusStats {
            documents: docs.len(),
            bytes: docs.iter().map(Document::len).sum(),
            // Only candidate slots can be non-empty, so the tallies walk
            // the candidate list, not the corpus.
            mappings: candidates.iter().map(|&i| results[i as usize].len()).sum(),
            matched_documents: candidates
                .iter()
                .filter(|&&i| !results[i as usize].is_empty())
                .count(),
            threads: workers,
            docs_skipped,
            docs_rejected,
            elapsed: start.elapsed(),
        };
        Ok(CorpusResult { results, stats })
    }

    /// Evaluates the corpus by sharding it across a persistent
    /// [`WorkerPool`] instead of spawning scoped threads per call — the
    /// shape a long-running query service wants, where one pool serves
    /// thousands of corpus requests and thread spawn cost is paid once at
    /// startup.
    ///
    /// The engine and the documents are shared with the workers through
    /// `Arc` (jobs on a persistent pool are `'static`). Results are in
    /// corpus order and bit-identical to [`CorpusEngine::evaluate_with_threads`]
    /// for every pool size.
    pub fn evaluate_on_pool(
        self: &Arc<CorpusEngine>,
        docs: &Arc<Vec<Document>>,
        pool: &WorkerPool,
    ) -> SpannerResult<CorpusResult> {
        let start = Instant::now();
        let threads = effective_threads(pool.threads(), docs.len());
        let chunks = shard_ranges(docs.len(), threads);
        let (send, recv) = std::sync::mpsc::channel();
        for (index, range) in chunks.iter().cloned().enumerate() {
            let engine = Arc::clone(self);
            let docs = Arc::clone(docs);
            let send = send.clone();
            pool.execute(move || {
                let results: Vec<(SpannerResult<MappingSet>, DocOutcome)> = docs[range.clone()]
                    .iter()
                    .map(|doc| eval_doc(&engine.plan, doc))
                    .collect();
                // The receiver may already be gone when an earlier chunk
                // reported an error; dropping the result is fine then.
                let _ = send.send((index, results));
            });
        }
        drop(send);
        let mut slots: Vec<DocSlot> = vec![None; docs.len()];
        for _ in 0..chunks.len() {
            let (index, chunk_results) = recv
                .recv()
                .expect("every chunk job reports exactly once before the senders close");
            for (slot, result) in slots[chunks[index].clone()].iter_mut().zip(chunk_results) {
                *slot = Some(result);
            }
        }
        // As on the scoped path: the shard count, not the clamped request,
        // is the number of workers that ran (the calling thread for an
        // empty corpus).
        collect_result(docs, chunks.len().max(1), slots, start)
    }
}

impl std::fmt::Debug for CorpusEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CorpusEngine({:?})", self.plan)
    }
}

/// Hard ceiling on spawned workers: corpora can be arbitrarily large, and a
/// requested count far past the CPU count would only pay thread-spawn cost
/// (or abort the process when the OS refuses to spawn). Public so other
/// thread-pool layers (the serve daemon) clamp to the same bound.
pub const MAX_THREADS: usize = 256;

/// Resolves the requested worker count: `0` means one per available CPU;
/// there is never a point in more workers than documents, nor past
/// [`MAX_THREADS`].
fn effective_threads(requested: usize, docs: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let threads = if requested == 0 { available } else { requested };
    threads.clamp(1, docs.clamp(1, MAX_THREADS))
}

/// Splits a document into one [`Document`] per line — the shape of the
/// log-scanning and record-extraction workloads, where each line is an
/// independent record.
pub fn split_lines(text: &str) -> Vec<Document> {
    text.lines().map(Document::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ranges_are_exact_and_balanced() {
        for len in 0..40usize {
            for shards in 1..7usize {
                let ranges = partition_ranges(len, shards);
                assert_eq!(ranges.len(), shards, "len={len} shards={shards}");
                // Contiguous, in order, covering 0..len exactly once.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len={len} shards={shards}: {sizes:?}");
            }
        }
        // Zero shards degrades to one.
        assert_eq!(partition_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn shard_map_locates_every_document() {
        let map = ShardMap::partition(10, 3);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.len(), 10);
        assert_eq!((map.size(0), map.size(1), map.size(2)), (4, 3, 3));
        assert_eq!((map.base(0), map.base(1), map.base(2)), (0, 4, 7));
        // locate agrees with base + local for every id; past-the-end is None.
        for id in 0..10 {
            let (shard, local) = map.locate(id).unwrap();
            assert_eq!(map.base(shard) + local, id, "id={id}");
            assert!(local < map.size(shard));
        }
        assert_eq!(map.locate(10), None);
        // Appends grow the last shard only, keeping earlier ids stable.
        let mut map = map;
        map.append(2);
        assert_eq!(map.len(), 12);
        assert_eq!(map.locate(4), Some((1, 0)));
        assert_eq!(map.locate(10), Some((2, 3)));
        // An empty corpus still has one (empty) shard to address.
        let empty = ShardMap::partition(0, 2);
        assert_eq!(empty.shards(), 2);
        assert!(empty.is_empty());
        assert_eq!(empty.locate(0), None);
        assert_eq!(ShardMap::new(Vec::new()).shards(), 1);
    }

    fn engine(pattern: &str) -> CorpusEngine {
        let inst = Instantiation::new().with(0, spanner_rgx::parse(pattern).unwrap());
        CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap()
    }

    #[test]
    fn results_are_in_corpus_order() {
        let e = engine("{x:a+}");
        let docs = vec![
            Document::new("aa"),
            Document::new("b"),
            Document::new("a"),
            Document::new(""),
        ];
        let out = e.evaluate_with_threads(&docs, 2).unwrap();
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.results[0].len(), 1); // x = [1,3⟩ (formulas are anchored)
        assert!(out.results[1].is_empty());
        assert_eq!(out.results[2].len(), 1);
        assert!(out.results[3].is_empty());
        assert_eq!(out.stats.matched_documents, 2);
        assert_eq!(out.stats.mappings, 2);
        assert_eq!(out.stats.bytes, 4);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let e = engine("{x:a}");
        let out = e.evaluate_with_threads(&[], 4).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.documents, 0);
        assert_eq!(out.stats.mappings, 0);
    }

    #[test]
    fn errors_propagate_from_workers() {
        // A plan over more variables than the enumerator supports errors at
        // evaluation time; the engine must surface that error.
        let mut parts = Vec::new();
        for i in 0..=spanner_enum::MAX_VARS {
            parts.push(format!("{{v{i:02}:a?}}"));
        }
        let e = engine(&parts.concat());
        let docs = vec![Document::new("aaa")];
        assert!(e.evaluate_with_threads(&docs, 2).is_err());
    }

    #[test]
    fn pool_evaluation_is_bit_identical_to_scoped() {
        let e = Arc::new(engine("{x:a+}"));
        let docs: Arc<Vec<Document>> = Arc::new(
            ["aa", "b", "a", "", "aaa", "ba"]
                .iter()
                .map(|t| Document::new(*t))
                .collect(),
        );
        let scoped = e.evaluate_with_threads(&docs, 2).unwrap();
        for pool_size in [1, 2, 4] {
            let pool = WorkerPool::new(pool_size);
            let pooled = e.evaluate_on_pool(&docs, &pool).unwrap();
            assert_eq!(pooled.results, scoped.results, "pool size {pool_size}");
            assert_eq!(pooled.stats.mappings, scoped.stats.mappings);
        }
    }

    #[test]
    fn pool_evaluation_propagates_errors_and_handles_empty() {
        let pool = WorkerPool::new(2);
        let e = Arc::new(engine("{x:a}"));
        let empty: Arc<Vec<Document>> = Arc::new(Vec::new());
        let out = e.evaluate_on_pool(&empty, &pool).unwrap();
        assert!(out.results.is_empty());

        let mut parts = Vec::new();
        for i in 0..=spanner_enum::MAX_VARS {
            parts.push(format!("{{v{i:02}:a?}}"));
        }
        let failing = Arc::new(engine(&parts.concat()));
        let docs = Arc::new(vec![Document::new("aaa"), Document::new("a")]);
        assert!(failing.evaluate_on_pool(&docs, &pool).is_err());
    }

    #[test]
    fn shard_document_counts_sum_to_corpus_size() {
        for len in [0usize, 1, 2, 3, 5, 7, 16, 100, 101, 255, 256, 257] {
            for threads in [1usize, 2, 3, 4, 7, 8, 16, 64, 256] {
                let ranges = shard_ranges(len, threads);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} threads={threads}");
                // Disjoint, in order, and gap-free.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} threads={threads}");
                    assert!(r.end > r.start, "empty shard len={len} threads={threads}");
                    next = r.end;
                }
                assert_eq!(next, len);
                // Never more shards than requested workers.
                assert!(ranges.len() <= threads, "len={len} threads={threads}");
            }
        }

        // `stats.threads` reports the shards actually run, not the clamped
        // request: 10 docs / 8 threads rounds to chunks of 2 → 5 shards.
        assert_eq!(shard_ranges(10, 8).len(), 5);
        let e = engine("{x:a+}");
        let docs: Vec<Document> = (0..10).map(|i| Document::new("a".repeat(i % 3))).collect();
        let out = e.evaluate_with_threads(&docs, 8).unwrap();
        assert_eq!(out.stats.threads, 5);
        let e = Arc::new(e);
        let docs = Arc::new(docs);
        let pool = WorkerPool::new(8);
        let pooled = e.evaluate_on_pool(&docs, &pool).unwrap();
        assert_eq!(pooled.stats.threads, 5);
        // Single-worker and empty-corpus paths report the calling thread.
        assert_eq!(e.evaluate_with_threads(&docs, 1).unwrap().stats.threads, 1);
        let empty: Arc<Vec<Document>> = Arc::new(Vec::new());
        assert_eq!(e.evaluate_on_pool(&empty, &pool).unwrap().stats.threads, 1);
    }

    #[test]
    fn fast_path_counters_track_skipped_and_rejected_documents() {
        // ".*{x:a+}@.*" has required factors {a} and {@}: a document missing
        // either is skipped by the static prefilters; "@@@" carries the
        // factors' bytes only partially... use a doc with both factor bytes
        // present but no match to exercise the boolean reject tier.
        let e = engine(".*{x:a+}@.*");
        let docs = vec![
            Document::new("xxa@yy"), // match: evaluated
            Document::new("bbbb"),   // no '@', no 'a': skipped by factors
            Document::new("@aaa"),   // factors present, '@' before 'a': rejected
        ];
        for threads in [1, 2, 3] {
            let out = e.evaluate_with_threads(&docs, threads).unwrap();
            assert_eq!(out.stats.docs_skipped, 1, "threads={threads}");
            assert_eq!(out.stats.docs_rejected, 1, "threads={threads}");
            assert_eq!(out.stats.matched_documents, 1);
            assert!(out.results[1].is_empty() && out.results[2].is_empty());
        }
    }

    #[test]
    fn counters_are_zero_when_fast_path_is_disabled() {
        let inst = Instantiation::new().with(0, spanner_rgx::parse(".*{x:a+}@.*").unwrap());
        let options = RaOptions {
            scan_fast_path: false,
            ..RaOptions::default()
        };
        let e = CorpusEngine::compile(&RaTree::leaf(0), &inst, options).unwrap();
        let docs = vec![
            Document::new("xxa@yy"),
            Document::new("bbbb"),
            Document::new("@aaa"),
        ];
        let out = e.evaluate_with_threads(&docs, 2).unwrap();
        assert_eq!(out.stats.docs_skipped, 0);
        assert_eq!(out.stats.docs_rejected, 0);
        assert_eq!(out.stats.matched_documents, 1);
    }

    #[test]
    fn candidate_evaluation_skips_non_candidates_and_keeps_order() {
        let e = engine("{x:a+}");
        let docs: Vec<Document> = ["aa", "b", "a", "", "aaa", "ba", "aa"]
            .iter()
            .map(|t| Document::new(*t))
            .collect();
        let full = e.evaluate_with_threads(&docs, 2).unwrap();
        // A sound candidate set: every doc with a non-empty result.
        let candidates: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.text().chars().all(|c| c == 'a') && !d.is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        for threads in [1, 2, 4] {
            let out = e
                .evaluate_candidates_with_threads(&docs, &candidates, threads)
                .unwrap();
            assert_eq!(out.results, full.results, "threads={threads}");
            assert_eq!(out.stats.documents, docs.len());
            // Non-candidates count as skipped without being visited.
            assert!(
                out.stats.docs_skipped >= docs.len() - candidates.len(),
                "{:?}",
                out.stats
            );
        }
        // An empty candidate set touches nothing.
        let out = e.evaluate_candidates_with_threads(&docs, &[], 4).unwrap();
        assert!(out.results.iter().all(MappingSet::is_empty));
        assert_eq!(out.stats.docs_skipped, docs.len());
        assert_eq!(out.stats.threads, 1);
    }

    #[test]
    fn traced_corpus_evaluation_matches_untraced_for_every_thread_count() {
        let e = engine(".*{x:a+}@.*");
        let docs = vec![
            Document::new("xxa@yy"), // evaluated, matches
            Document::new("bbbb"),   // skipped by static prefilters
            Document::new("@aaa"),   // rejected by the boolean scan
            Document::new("a@"),     // evaluated, matches
        ];
        let untraced = e.evaluate_with_threads(&docs, 2).unwrap();
        let mut baseline: Option<ExecTrace> = None;
        for threads in [1, 2, 4] {
            let (out, trace) = e.evaluate_traced_with_threads(&docs, threads).unwrap();
            assert_eq!(out.results, untraced.results, "threads={threads}");
            // The trace's corpus tallies agree with the stats counters.
            assert_eq!(
                trace.counter("corpus_docs_skipped") as usize,
                out.stats.docs_skipped,
                "threads={threads}"
            );
            assert_eq!(
                trace.counter("corpus_docs_rejected") as usize,
                out.stats.docs_rejected,
                "threads={threads}"
            );
            assert_eq!(trace.counter("corpus_docs_evaluated"), 2);
            assert_eq!(trace.total_rows(), out.stats.mappings as u64);
            // Deterministic modulo wall time: rows and counters are
            // identical for every thread count (merge order commutes).
            let mut timeless = trace.clone();
            fn zero_nanos(node: &mut ExecTrace) {
                node.nanos = 0;
                node.children.iter_mut().for_each(zero_nanos);
            }
            zero_nanos(&mut timeless);
            match &baseline {
                None => baseline = Some(timeless),
                Some(b) => assert_eq!(b, &timeless, "threads={threads}"),
            }
        }
    }

    #[test]
    fn split_lines_shape() {
        let docs = split_lines("a\nbb\n\nc");
        assert_eq!(docs.len(), 4);
        assert_eq!(docs[1].text(), "bb");
        assert!(docs[2].is_empty());
    }
}
