//! A persistent worker pool for long-running corpus evaluation.
//!
//! [`CorpusEngine::evaluate_with_threads`](crate::CorpusEngine::evaluate_with_threads)
//! spawns *scoped* threads per call — the right shape for a CLI invocation
//! that evaluates one corpus and exits, but wasteful for a resident query
//! service that shards thousands of corpus requests: every request would
//! pay thread spawn and teardown. [`WorkerPool`] keeps a fixed set of
//! workers alive for the lifetime of the process;
//! [`CorpusEngine::evaluate_on_pool`](crate::CorpusEngine::evaluate_on_pool)
//! shards a corpus across it with the same corpus-order, bit-identical
//! result guarantees as the scoped path.
//!
//! Jobs are `'static` closures (the pool outlives any one call), so the
//! sharded evaluation shares the engine and the documents through `Arc`
//! instead of scoped borrows.

use std::num::NonZeroUsize;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work submitted to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
///
/// Workers pull jobs from a shared queue; dropping the pool closes the
/// queue and joins every worker (after it finishes its current job), so
/// the pool drains gracefully.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (`0` = one per available CPU,
    /// capped like the scoped path).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = resolve_pool_threads(threads);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Hold the queue lock only to pop; run the job unlocked.
                    let job = match receiver.lock().expect("pool queue poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => return, // queue closed: pool is shutting down
                    };
                    job();
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job to the pool. The job runs on some worker, after every
    /// job submitted before it has been picked up.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker finish its current job,
        // drain the remaining queue, and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({} threads)", self.workers.len())
    }
}

/// Resolves a requested worker-pool size: `0` means one worker per
/// available CPU; the result is clamped to `[1, MAX_THREADS]`, matching
/// the scoped evaluation path. Public so every thread-pool layer (the
/// serve daemon's connection workers included) resolves identically.
pub fn resolve_pool_threads(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let threads = if requested == 0 { available } else { requested };
    threads.clamp(1, crate::MAX_THREADS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done, signal) = channel();
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let done = done.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            });
        }
        for _ in 0..50 {
            signal.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping joins the worker after the queue is drained.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn zero_resolves_to_at_least_one_worker() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }
}
