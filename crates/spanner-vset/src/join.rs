//! Static compilation of the natural join (Lemmas 3.2 / 3.8, Proposition 3.12).
//!
//! [`join`] compiles the natural join of two sequential VAs into a single
//! sequential VA. The construction is fixed-parameter tractable in the number
//! of *common* variables `k = |Vars(A₁) ∩ Vars(A₂)|`, matching Lemma 3.2:
//! the output has `O(3^k · |Q₁||Q₂| · 4^k)` states in the worst case and is
//! built lazily, so in practice it is far smaller.
//!
//! ## How the product synchronizes shared variables
//!
//! Two mappings are compatible when they agree on the variables both of them
//! define. For every shared variable `x` the product therefore branches over
//! a *mode*:
//!
//! * `Sync` — both operands bind `x` (or neither does); the product forces
//!   the open/close operations to happen at the same document positions by
//!   tracking, for each operand, the set of shared operations it has
//!   performed since the last consumed symbol and requiring the two sets to
//!   be equal whenever a symbol is consumed and at acceptance.
//! * `LeftOnly` — the right operand is forbidden to touch `x` (covers pairs
//!   where only the left mapping defines `x`).
//! * `RightOnly` — symmetric.
//!
//! The union over all mode vectors covers exactly the compatible pairs, and
//! every emitted run is valid, so the result is again sequential. Impossible
//! modes are pruned using the usage analysis (`must_use` / `can_avoid`), so
//! when both operands are functional over the shared variables — e.g. for
//! the disjunctive-functional join of Proposition 3.12 — only the single
//! `Sync` vector remains and the construction is polynomial with no
//! dependence on `k`.

use crate::analysis::{can_avoid, is_sequential};
use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{FxHashMap, SpannerError, SpannerResult, Variable};
use std::collections::HashMap;

/// Per-shared-variable synchronization mode.
///
/// Modes are decided *lazily*: every shared variable starts `Undecided` and
/// the product branches on the first operation that touches it. Only
/// reachable mode combinations are ever materialized, which keeps the
/// construction close to the true product size instead of the worst-case
/// `3^k` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Mode {
    /// Neither operand has touched the variable yet.
    Undecided,
    /// Both operands perform the variable's operations at the same positions.
    Sync,
    /// Only the left operand may operate on the variable.
    LeftOnly,
    /// Only the right operand may operate on the variable.
    RightOnly,
}

impl Mode {
    fn code(self) -> u64 {
        match self {
            Mode::Undecided => 0,
            Mode::Sync => 1,
            Mode::LeftOnly => 2,
            Mode::RightOnly => 3,
        }
    }

    fn from_code(code: u64) -> Mode {
        match code {
            0 => Mode::Undecided,
            1 => Mode::Sync,
            2 => Mode::LeftOnly,
            _ => Mode::RightOnly,
        }
    }
}

/// Reads the mode of shared variable `i` from the packed vector.
fn get_mode(modes: u64, i: usize) -> Mode {
    Mode::from_code((modes >> (2 * i)) & 0b11)
}

/// Returns the packed vector with the mode of shared variable `i` set.
fn set_mode(modes: u64, i: usize, mode: Mode) -> u64 {
    (modes & !(0b11 << (2 * i))) | (mode.code() << (2 * i))
}

/// Options controlling the join compilation.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Upper bound on the number of product states (guards against the
    /// exponential dependence on the number of shared variables).
    pub max_states: usize,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            max_states: 4_000_000,
        }
    }
}

/// Compiles `VA₁ ⋈ A₂W` into a single sequential VA (Lemma 3.2).
///
/// Both inputs must be sequential. The runtime and output size are
/// fixed-parameter tractable in `|Vars(A₁) ∩ Vars(A₂)|`.
pub fn join(a1: &Vsa, a2: &Vsa) -> SpannerResult<Vsa> {
    join_with_options(a1, a2, JoinOptions::default())
}

/// Maximum number of shared variables supported by the packed product-state
/// representation.
pub const MAX_SHARED_JOIN_VARS: usize = 30;

/// [`join`] with explicit limits.
pub fn join_with_options(a1: &Vsa, a2: &Vsa, options: JoinOptions) -> SpannerResult<Vsa> {
    for (name, a) in [("left", a1), ("right", a2)] {
        if !is_sequential(a) {
            return Err(SpannerError::requirement(
                "sequential",
                format!("the {name} operand of the join is not sequential"),
            ));
        }
    }
    let a1 = a1.trim();
    let a2 = a2.trim();
    if a1.accepting_states().is_empty() || a2.accepting_states().is_empty() {
        return Ok(Vsa::new());
    }
    let shared: Vec<Variable> = a1.vars().intersection(a2.vars()).to_vec();
    if shared.len() > MAX_SHARED_JOIN_VARS {
        return Err(SpannerError::LimitExceeded {
            what: "shared join variables",
            limit: MAX_SHARED_JOIN_VARS,
            actual: shared.len(),
        });
    }
    // Usage analysis for pruning: a `LeftOnly` / `RightOnly` branch can only
    // lead to acceptance if the *other* operand has an accepting run avoiding
    // the variable.
    let left_only_allowed: Vec<bool> = shared.iter().map(|x| can_avoid(&a2, x)).collect();
    let right_only_allowed: Vec<bool> = shared.iter().map(|x| can_avoid(&a1, x)).collect();

    build_product(
        &a1,
        &a2,
        &shared,
        &left_only_allowed,
        &right_only_allowed,
        options,
    )
    .map(Vsa::trimmed)
}

/// Computes, for every state, the bitmask of *shared* variable operations
/// (bit `2i` = open of shared var `i`, bit `2i + 1` = close) performable on
/// some path of non-consuming transitions starting at the state.
///
/// Used to prune product states at generation time: if one operand has
/// performed a sync-mode operation that the other can no longer perform
/// before the next consumed symbol, the sync sets can never equalize and the
/// product state is dead. Generating (and later trimming) those states is
/// where the naive construction spends most of its time.
fn reachable_shared_ops(a: &Vsa, shared_index: &HashMap<&Variable, usize>) -> Vec<u64> {
    let n = a.state_count();
    let mut ops = vec![0u64; n];
    // Fixpoint: the op masks only grow, and each pass propagates them one
    // non-consuming edge further; iteration count is bounded by the longest
    // simple zero-path.
    loop {
        let mut changed = false;
        for q in 0..n {
            let mut acc = ops[q];
            for t in a.transitions_from(q) {
                match &t.label {
                    Label::Epsilon => acc |= ops[t.target],
                    Label::Class(_) => {}
                    Label::Open(v) | Label::Close(v) => {
                        acc |= ops[t.target];
                        if let Some(&i) = shared_index.get(v) {
                            let is_open = matches!(t.label, Label::Open(_));
                            acc |= 1u64 << (2 * i + usize::from(!is_open));
                        }
                    }
                }
            }
            if acc != ops[q] {
                ops[q] = acc;
                changed = true;
            }
        }
        if !changed {
            return ops;
        }
    }
}

/// A product state.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ProductState {
    q1: StateId,
    q2: StateId,
    /// Shared (sync-mode) operations performed by the left operand since the
    /// last consumed symbol; bit `2i` = open of shared var `i`, bit `2i + 1` =
    /// close of shared var `i`.
    d1: u64,
    /// Same for the right operand.
    d2: u64,
    /// Packed per-shared-variable modes (2 bits each).
    modes: u64,
}

/// Builds the lazy-mode product automaton.
fn build_product(
    a1: &Vsa,
    a2: &Vsa,
    shared: &[Variable],
    left_only_allowed: &[bool],
    right_only_allowed: &[bool],
    options: JoinOptions,
) -> SpannerResult<Vsa> {
    let shared_index: HashMap<&Variable, usize> =
        shared.iter().enumerate().map(|(i, v)| (v, i)).collect();
    let reach1 = reachable_shared_ops(a1, &shared_index);
    let reach2 = reachable_shared_ops(a2, &shared_index);
    // A successor is viable only if every sync operation one operand is
    // ahead on is still performable by the other before the next symbol.
    let viable = |ps: &ProductState| -> bool {
        (ps.d1 & !ps.d2) & !reach2[ps.q2] == 0 && (ps.d2 & !ps.d1) & !reach1[ps.q1] == 0
    };

    let mut out = Vsa::new(); // state 0 = fresh initial state
    let mut index: FxHashMap<ProductState, StateId> = FxHashMap::default();
    let start = ProductState {
        q1: a1.initial(),
        q2: a2.initial(),
        d1: 0,
        d2: 0,
        modes: 0,
    };
    let is_accepting =
        |ps: &ProductState| a1.is_accepting(ps.q1) && a2.is_accepting(ps.q2) && ps.d1 == ps.d2;
    let entry = out.add_state();
    out.set_accepting(entry, is_accepting(&start));
    out.add_transition(0, Label::Epsilon, entry);
    index.insert(start.clone(), entry);
    let mut work = vec![start];

    let mut successors: Vec<(ProductState, Label)> = Vec::new();
    while let Some(ps) = work.pop() {
        let from = index[&ps];
        // Collect the successors of this product state, then intern them.
        successors.clear();

        // Moves of the left operand.
        for t in a1.transitions_from(ps.q1) {
            match &t.label {
                Label::Epsilon => successors.push((
                    ProductState {
                        q1: t.target,
                        ..ps.clone()
                    },
                    Label::Epsilon,
                )),
                Label::Class(c1) => {
                    // Symbols are consumed jointly; the sync sets must agree.
                    if ps.d1 != ps.d2 {
                        continue;
                    }
                    for t2 in a2.transitions_from(ps.q2) {
                        if let Label::Class(c2) = &t2.label {
                            let both = c1.intersect(c2);
                            if both.is_empty() {
                                continue;
                            }
                            successors.push((
                                ProductState {
                                    q1: t.target,
                                    q2: t2.target,
                                    d1: 0,
                                    d2: 0,
                                    modes: ps.modes,
                                },
                                Label::Class(both),
                            ));
                        }
                    }
                }
                Label::Open(v) | Label::Close(v) => {
                    let is_open = matches!(t.label, Label::Open(_));
                    match shared_index.get(v) {
                        None => {
                            // Private variable of the left operand.
                            successors.push((
                                ProductState {
                                    q1: t.target,
                                    ..ps.clone()
                                },
                                t.label.clone(),
                            ));
                        }
                        Some(&i) => {
                            let bit = 1u64 << (2 * i + usize::from(!is_open));
                            let mode = get_mode(ps.modes, i);
                            // Synchronized branch.
                            if matches!(mode, Mode::Undecided | Mode::Sync) {
                                successors.push((
                                    ProductState {
                                        q1: t.target,
                                        d1: ps.d1 | bit,
                                        modes: set_mode(ps.modes, i, Mode::Sync),
                                        ..ps.clone()
                                    },
                                    t.label.clone(),
                                ));
                            }
                            // Left-only branch (the right operand avoids the
                            // variable for the rest of the run).
                            if (mode == Mode::Undecided && left_only_allowed[i])
                                || mode == Mode::LeftOnly
                            {
                                successors.push((
                                    ProductState {
                                        q1: t.target,
                                        modes: set_mode(ps.modes, i, Mode::LeftOnly),
                                        ..ps.clone()
                                    },
                                    t.label.clone(),
                                ));
                            }
                            // Mode::RightOnly: the left operand may not touch it.
                        }
                    }
                }
            }
        }

        // Moves of the right operand (symbols were handled jointly above).
        for t in a2.transitions_from(ps.q2) {
            match &t.label {
                Label::Epsilon => successors.push((
                    ProductState {
                        q2: t.target,
                        ..ps.clone()
                    },
                    Label::Epsilon,
                )),
                Label::Class(_) => {}
                Label::Open(v) | Label::Close(v) => {
                    let is_open = matches!(t.label, Label::Open(_));
                    match shared_index.get(v) {
                        None => {
                            successors.push((
                                ProductState {
                                    q2: t.target,
                                    ..ps.clone()
                                },
                                t.label.clone(),
                            ));
                        }
                        Some(&i) => {
                            let bit = 1u64 << (2 * i + usize::from(!is_open));
                            let mode = get_mode(ps.modes, i);
                            // Synchronized branch: the left operand is the one
                            // that emits the shared operation, so this copy is
                            // silent.
                            if matches!(mode, Mode::Undecided | Mode::Sync) {
                                successors.push((
                                    ProductState {
                                        q2: t.target,
                                        d2: ps.d2 | bit,
                                        modes: set_mode(ps.modes, i, Mode::Sync),
                                        ..ps.clone()
                                    },
                                    Label::Epsilon,
                                ));
                            }
                            // Right-only branch.
                            if (mode == Mode::Undecided && right_only_allowed[i])
                                || mode == Mode::RightOnly
                            {
                                successors.push((
                                    ProductState {
                                        q2: t.target,
                                        modes: set_mode(ps.modes, i, Mode::RightOnly),
                                        ..ps.clone()
                                    },
                                    t.label.clone(),
                                ));
                            }
                            // Mode::LeftOnly: the right operand may not touch it.
                        }
                    }
                }
            }
        }

        for (target, label) in successors.drain(..) {
            if !viable(&target) {
                continue;
            }
            let to = match index.get(&target) {
                Some(&id) => id,
                None => {
                    if out.state_count() >= options.max_states {
                        return Err(SpannerError::LimitExceeded {
                            what: "join product states",
                            limit: options.max_states,
                            actual: out.state_count() + 1,
                        });
                    }
                    let id = out.add_state();
                    out.set_accepting(id, is_accepting(&target));
                    index.insert(target.clone(), id);
                    work.push(target);
                    id
                }
            };
            out.add_transition(from, label, to);
        }
    }
    Ok(out)
}

/// Pairwise join of the functional components of two disjunctive-functional
/// VAs (Proposition 3.12): returns the components of a disjunctive-functional
/// VA equivalent to the join of the two inputs.
pub fn join_disjunctive_functional(
    components1: &[Vsa],
    components2: &[Vsa],
) -> SpannerResult<Vec<Vsa>> {
    let mut out = Vec::with_capacity(components1.len() * components2.len());
    for c1 in components1 {
        for c2 in components2 {
            let j = join(c1, c2)?;
            // Skip trivially empty components.
            if j.accepting_states().is_empty() {
                continue;
            }
            out.push(j);
        }
    }
    Ok(out)
}

/// Assembles a disjunctive-functional VA from its components: a fresh initial
/// state with ε-transitions to every component's initial state.
pub fn assemble_disjunction(components: &[Vsa]) -> Vsa {
    let mut out = Vsa::new();
    for c in components {
        let offset = Vsa::copy_into(&mut out, c);
        out.add_transition(0, Label::Epsilon, c.initial() + offset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_sequential;
    use crate::interpret::interpret;
    use crate::thompson::compile;
    use spanner_core::Document;
    use spanner_rgx::parse;

    /// Oracle: the materialized join of the two interpreted relations.
    fn oracle_join(a1: &Vsa, a2: &Vsa, doc: &Document) -> spanner_core::MappingSet {
        interpret(a1, doc).join(&interpret(a2, doc))
    }

    fn compiled(pattern: &str) -> Vsa {
        compile(&parse(pattern).unwrap())
    }

    #[test]
    fn join_without_shared_variables_is_a_cross_product() {
        let a1 = compiled("{x:a+}.*");
        let a2 = compiled(".*{y:b+}");
        let j = join(&a1, &a2).unwrap();
        assert!(is_sequential(&j));
        for text in ["ab", "aabb", "ba", ""] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&j, &doc),
                oracle_join(&a1, &a2, &doc),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn join_with_shared_variable_requires_equal_spans() {
        // Both operands bind x; the join keeps only equal spans.
        let a1 = compiled("{x:a+}b*");
        let a2 = compiled("{x:a*}b+|{x:a+b*}");
        let j = join(&a1, &a2).unwrap();
        assert!(is_sequential(&j));
        for text in ["ab", "aab", "a", "b", "aabb"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&j, &doc),
                oracle_join(&a1, &a2, &doc),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn join_schemaless_optional_shared_variable() {
        // The left operand sometimes skips x (schemaless); compatibility then
        // allows any right-operand binding of x.
        let a1 = compiled("({x:a+})?b.*");
        let a2 = compiled("a*b{y:.*}|{x:a}b{y:.*}");
        let j = join(&a1, &a2).unwrap();
        assert!(is_sequential(&j));
        for text in ["b", "ab", "aab", "abc"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&j, &doc),
                oracle_join(&a1, &a2, &doc),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn join_of_functional_operands_uses_single_mode() {
        // Functional operands over the same variables: the classic
        // schema-based join.
        let a1 = compiled(".*{x:\\d+}.*{y:\\l+}.*");
        let a2 = compiled(".*{x:\\d\\d}.*{y:\\l\\l}.*");
        let j = join(&a1, &a2).unwrap();
        for text in ["12 ab", "1 ab 34 cd"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&j, &doc),
                oracle_join(&a1, &a2, &doc),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn empty_operand_produces_empty_join() {
        let a1 = compiled("{x:a}");
        let mut empty = Vsa::new();
        let q = empty.add_state();
        empty.add_transition(0, Label::Open(Variable::new("x")), q);
        // no accepting state
        let j = join(&a1, &empty).unwrap();
        assert!(interpret(&j, &Document::new("a")).is_empty());
    }

    #[test]
    fn non_sequential_operands_are_rejected() {
        let mut bad = Vsa::new();
        let q1 = bad.add_state();
        bad.add_transition(0, Label::Open(Variable::new("x")), q1);
        bad.set_accepting(q1, true);
        let good = compiled("a");
        assert!(matches!(
            join(&bad, &good),
            Err(SpannerError::Requirement { .. })
        ));
        assert!(matches!(
            join(&good, &bad),
            Err(SpannerError::Requirement { .. })
        ));
    }

    #[test]
    fn state_limit_is_enforced() {
        let a1 = compiled("({x:a})?({y:a})?({z:a})?a*");
        let a2 = compiled("({x:a})?({y:a})?({z:a})?a*");
        let err = join_with_options(&a1, &a2, JoinOptions { max_states: 5 });
        assert!(matches!(err, Err(SpannerError::LimitExceeded { .. })));
    }

    #[test]
    fn disjunctive_functional_join_is_pairwise() {
        // Two disjunctive-functional spanners with 2 components each.
        let c1 = vec![compiled("{x:a}b"), compiled("{y:a}b")];
        let c2 = vec![compiled("{x:a}b"), compiled("a{z:b}")];
        let joined = join_disjunctive_functional(&c1, &c2).unwrap();
        assert!(joined.len() <= 4);
        let assembled = assemble_disjunction(&joined);
        let lhs = assemble_disjunction(&c1);
        let rhs = assemble_disjunction(&c2);
        for text in ["ab", "b", "a"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&assembled, &doc),
                oracle_join(&lhs, &rhs, &doc),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn join_is_commutative_semantically() {
        let a1 = compiled("({x:a+})?{y:b}.*");
        let a2 = compiled("{x:a}.*|.*{y:b}");
        let j12 = join(&a1, &a2).unwrap();
        let j21 = join(&a2, &a1).unwrap();
        for text in ["ab", "aab", "b"] {
            let doc = Document::new(text);
            assert_eq!(interpret(&j12, &doc), interpret(&j21, &doc), "on {text:?}");
        }
    }
}
