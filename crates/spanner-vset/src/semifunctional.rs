//! The semi-functional transformation (Lemma 3.6).
//!
//! Given a sequential VA `A` and a set of variables `X`, Lemma 3.6 constructs
//! an equivalent sequential VA that is *semi-functional for X*: every state
//! has a unique variable configuration in `{u, o, c}` for every variable of
//! `X` (no state mixes "unseen" and "closed" histories).
//!
//! The paper obtains this by splitting states with configuration `d` into two
//! copies, one variable at a time, at a total cost of `O(2^{|X|}(n + m))`.
//! The implementation here performs the equivalent product construction in a
//! single pass: a state of the output is a pair `(q, σ)` where `σ : X → {u,
//! o, c}` is the status vector of the run prefix. This yields at most
//! `3^{|X|}` copies per state — the same fixed-parameter class — and has two
//! additional useful properties:
//!
//! * the output is valid-by-construction for the variables of `X` (prefixes
//!   that would open a variable twice, close an unopened variable, etc. are
//!   simply not represented), and
//! * each output state knows its status vector, which the join and difference
//!   constructions reuse.

use crate::analysis::VarStatus;
use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{VarSet, Variable};
use std::collections::HashMap;

/// A vset-automaton together with the status vector of each of its states for
/// a tracked variable set `X` — the output of [`make_semi_functional`].
#[derive(Clone, Debug)]
pub struct SemiFunctionalVsa {
    /// The transformed automaton.
    pub vsa: Vsa,
    /// The tracked variables, in the (sorted) order used by `status_vectors`.
    pub tracked: Vec<Variable>,
    /// For every state of `vsa`, its status for each tracked variable.
    pub status_vectors: Vec<Vec<VarStatus>>,
}

impl SemiFunctionalVsa {
    /// The status of `state` for the `i`-th tracked variable.
    pub fn status(&self, state: StateId, var_index: usize) -> VarStatus {
        self.status_vectors[state][var_index]
    }

    /// The index of a tracked variable, if it is tracked.
    pub fn var_index(&self, x: &Variable) -> Option<usize> {
        self.tracked.iter().position(|v| v == x)
    }
}

/// Builds an automaton equivalent to `a` that is semi-functional for every
/// variable in `x_set` (Lemma 3.6).
///
/// The input does not have to be sequential for the *tracked* variables: run
/// prefixes that are invalid for a tracked variable are dropped, which never
/// changes `VAW(d)` (only valid runs produce mappings).
pub fn make_semi_functional(a: &Vsa, x_set: &VarSet) -> SemiFunctionalVsa {
    let tracked: Vec<Variable> = x_set.intersection(a.vars()).to_vec();
    let k = tracked.len();
    let var_index: HashMap<&Variable, usize> =
        tracked.iter().enumerate().map(|(i, v)| (v, i)).collect();

    let mut out = Vsa::new();
    let mut status_vectors: Vec<Vec<VarStatus>> = vec![vec![VarStatus::Unseen; k]];
    // Map (original state, status vector) -> output state.
    let mut index: HashMap<(StateId, Vec<VarStatus>), StateId> = HashMap::new();
    let start_key = (a.initial(), vec![VarStatus::Unseen; k]);
    index.insert(start_key.clone(), 0);
    out.set_accepting(0, a.is_accepting(a.initial()));

    let mut work: Vec<(StateId, Vec<VarStatus>)> = vec![start_key];
    while let Some((q, statuses)) = work.pop() {
        let from = index[&(q, statuses.clone())];
        for t in a.transitions_from(q) {
            let mut next_statuses = statuses.clone();
            match &t.label {
                Label::Open(v) | Label::Close(v) => {
                    if let Some(&i) = var_index.get(v) {
                        let is_open = matches!(t.label, Label::Open(_));
                        let next = statuses[i].apply(is_open);
                        if next == VarStatus::Bad {
                            // Invalid prefix for a tracked variable: drop it.
                            continue;
                        }
                        next_statuses[i] = next;
                    }
                }
                _ => {}
            }
            let key = (t.target, next_statuses.clone());
            let to = *index.entry(key.clone()).or_insert_with(|| {
                let id = out.add_state();
                status_vectors.push(next_statuses.clone());
                // Acceptance: the original state accepts and no tracked
                // variable is left open (validity at acceptance).
                let valid_end = next_statuses.iter().all(|s| *s != VarStatus::Open);
                out.set_accepting(id, a.is_accepting(t.target) && valid_end);
                work.push(key);
                id
            });
            out.add_transition(from, t.label.clone(), to);
        }
    }
    // Initial-state acceptance must also respect the open-variable rule, but
    // the all-unseen vector never has an open variable, so nothing to fix.

    SemiFunctionalVsa {
        vsa: out,
        tracked,
        status_vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_semi_functional, is_sequential};
    use crate::interpret::interpret;
    use spanner_core::{ByteClass, Document};

    fn v(x: &str) -> Variable {
        Variable::new(x)
    }

    fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(0, Label::Class(ByteClass::any()), 0);
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(v("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn example_3_5_splitting() {
        // The paper's Example 3.5: q2 splits into a "closed" and an "unseen"
        // copy, yielding an equivalent automaton that is semi-functional
        // for x.
        let a = example_2_3();
        let x = VarSet::from_iter(["x"]);
        assert!(!is_semi_functional(&a, &x));
        let sf = make_semi_functional(&a, &x);
        assert!(is_semi_functional(&sf.vsa, &x));
        assert!(is_sequential(&sf.vsa));
        // The example's A' has 4 states (q0, q1, q2ᶜ, q2ᵘ).
        assert_eq!(sf.vsa.state_count(), 4);
        // Equivalence on a few documents.
        for text in ["", "a", "ab", "abc"] {
            let doc = Document::new(text);
            assert_eq!(interpret(&a, &doc), interpret(&sf.vsa, &doc), "on {text:?}");
        }
    }

    #[test]
    fn tracking_untouched_variables_is_a_no_op_semantically() {
        let a = example_2_3();
        let sf = make_semi_functional(&a, &VarSet::from_iter(["not_there"]));
        assert!(sf.tracked.is_empty());
        for text in ["", "ab"] {
            let doc = Document::new(text);
            assert_eq!(interpret(&a, &doc), interpret(&sf.vsa, &doc));
        }
    }

    #[test]
    fn invalid_runs_for_tracked_variables_are_removed() {
        // An automaton with an accepting run that closes x twice; after the
        // transformation no such run exists, and the semantics (which never
        // counted the invalid run) is unchanged.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        let q3 = a.add_state();
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Close(v("x")), q2);
        a.add_transition(q2, Label::Close(v("x")), q3);
        a.add_transition(q2, Label::symbol(b'a'), q3);
        a.set_accepting(q3, true);
        let sf = make_semi_functional(&a, &VarSet::from_iter(["x"]));
        assert!(is_sequential(&sf.vsa));
        for text in ["", "a"] {
            let doc = Document::new(text);
            assert_eq!(interpret(&a, &doc), interpret(&sf.vsa, &doc));
        }
    }

    #[test]
    fn status_vectors_are_consistent() {
        let a = example_2_3();
        let sf = make_semi_functional(&a, &VarSet::from_iter(["x"]));
        assert_eq!(sf.tracked, vec![v("x")]);
        assert_eq!(sf.var_index(&v("x")), Some(0));
        assert_eq!(sf.var_index(&v("y")), None);
        // The initial state has status Unseen.
        assert_eq!(sf.status(sf.vsa.initial(), 0), VarStatus::Unseen);
        // Every accepting state has status Unseen or Closed (never Open).
        for q in sf.vsa.accepting_states() {
            assert_ne!(sf.status(q, 0), VarStatus::Open);
        }
    }

    #[test]
    fn blowup_is_bounded_by_three_to_the_k() {
        // Build an automaton over variables x0..x3 where each variable is
        // optionally bound; the transformed automaton must stay within
        // |Q| * 3^k states.
        let k = 3;
        let mut a = Vsa::new();
        let mut cur = a.initial();
        for i in 0..k {
            let opened = a.add_state();
            let closed = a.add_state();
            a.add_transition(cur, Label::Open(v(&format!("x{i}"))), opened);
            a.add_transition(opened, Label::symbol(b'a'), opened);
            a.add_transition(opened, Label::Close(v(&format!("x{i}"))), closed);
            a.add_transition(cur, Label::symbol(b'b'), closed);
            cur = closed;
        }
        a.set_accepting(cur, true);
        let vars: VarSet = (0..k).map(|i| v(&format!("x{i}"))).collect();
        let sf = make_semi_functional(&a, &vars);
        assert!(is_semi_functional(&sf.vsa, &vars));
        assert!(
            sf.vsa.state_count() <= a.state_count() * 3usize.pow(k as u32),
            "{} states",
            sf.vsa.state_count()
        );
        for text in ["", "a", "b", "ab", "ba", "bab"] {
            let doc = Document::new(text);
            assert_eq!(interpret(&a, &doc), interpret(&sf.vsa, &doc), "on {text:?}");
        }
    }
}
