//! Vset-automata: the automaton representation of document spanners.
//!
//! This crate implements the variable-set automata (VAs) of Section 2.3 of
//! *Complexity Bounds for Relational Algebra over Document Spanners*
//! (PODS 2019) together with the static analyses and compilations the paper
//! builds on them:
//!
//! * [`automaton`] — the automaton representation, projection, union,
//!   trimming;
//! * [`analysis`] — sequentiality, functionality, semi-functionality,
//!   synchronization, and the (extended) variable-configuration functions of
//!   Section 3.1;
//! * [`semifunctional`] — the semi-functional transformation of Lemma 3.6;
//! * [`mod@join`] — static compilation of the natural join, FPT in the number of
//!   shared variables (Lemma 3.2 / 3.8) and the pairwise
//!   disjunctive-functional join (Proposition 3.12);
//! * [`thompson`] — linear-time compilation of regex formulas into VAs
//!   (preserving sequentiality, functionality and synchronization,
//!   Lemma 4.6);
//! * [`compiled`] — the compile-once evaluation engine: precomputed
//!   ε-closures, byte-class dispatch tables, dense variable indices, and
//!   bitset state sets ([`StateSet`]);
//! * [`mod@interpret`] — a brute-force evaluator used as a test oracle;
//! * [`boolean`] — NFA determinization/complementation used to demonstrate
//!   why static compilation of the difference operator must blow up
//!   (Section 4, experiment E10).
//!
//! The production evaluation path (polynomial-delay enumeration) lives in
//! `spanner-enum`; the difference operator and RA trees live in
//! `spanner-algebra`.

pub mod analysis;
pub mod automaton;
pub mod boolean;
pub mod compiled;
pub mod interpret;
pub mod join;
pub mod scan;
pub mod semifunctional;
pub mod thompson;

pub use analysis::{
    is_functional, is_functional_for, is_semi_functional, is_sequential, is_synchronized,
    ExtendedConfig, VarStatus,
};
pub use automaton::{Label, StateId, Transition, Vsa};
pub use boolean::{determinize, nfa_accepts, static_boolean_difference, Dfa};
pub use compiled::{CompiledVsa, StateSet, VarOp};
pub use interpret::interpret;
pub use join::{
    assemble_disjunction, join, join_disjunctive_functional, join_with_options, JoinOptions,
};
pub use scan::{PreScan, ScanPlan};
pub use semifunctional::{make_semi_functional, SemiFunctionalVsa};
pub use thompson::compile;
