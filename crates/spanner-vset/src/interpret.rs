//! Brute-force interpretation of vset-automata (test oracle).
//!
//! [`interpret`] computes `VAW(d)` by a fixpoint over run configurations.
//! It materializes every reachable configuration `(position, state, partial
//! mapping, open variables)`, so it is exponential in the number of variables
//! and only suitable for small inputs. The production evaluation path lives
//! in `spanner-enum`; this interpreter exists so that the automaton
//! constructions in this crate can be validated independently of it.

use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{Document, FxHashSet, Mapping, MappingSet, Span, VarId, Variable};
use std::collections::BTreeMap;
use std::rc::Rc;

/// The variable bookkeeping of a run, shared between configurations.
///
/// ε- and letter-transitions do not touch the variable state, so successor
/// configurations share it through an `Rc` instead of cloning two vectors
/// per transition; a fresh `VarState` is allocated only by the (much rarer)
/// open/close operations. Variables are tracked by interned id.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
struct VarState {
    /// Variables already closed, with their spans (sorted by id).
    closed: Vec<(VarId, Span)>,
    /// Variables currently open, with their opening positions (sorted by id).
    open: Vec<(VarId, u32)>,
}

/// A run configuration of the interpreter.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Config {
    pos: u32,
    state: StateId,
    vars: Rc<VarState>,
}

/// Computes `VAW(d)`: the set of mappings of all **valid** accepting runs of
/// the automaton on the document.
pub fn interpret(a: &Vsa, doc: &Document) -> MappingSet {
    let n = doc.len() as u32;
    let mut result = Vec::new();
    let mut seen: FxHashSet<Config> = FxHashSet::default();
    let start = Config {
        pos: 1,
        state: a.initial(),
        vars: Rc::new(VarState::default()),
    };
    let mut stack = vec![start.clone()];
    seen.insert(start);

    while let Some(cfg) = stack.pop() {
        if cfg.pos == n + 1 && a.is_accepting(cfg.state) && cfg.vars.open.is_empty() {
            result.push(Mapping::from_pairs(
                cfg.vars
                    .closed
                    .iter()
                    .map(|&(id, s)| (Variable::from_id(id), s)),
            ));
        }
        for t in a.transitions_from(cfg.state) {
            let next = match &t.label {
                Label::Epsilon => Some(Config {
                    pos: cfg.pos,
                    state: t.target,
                    vars: Rc::clone(&cfg.vars),
                }),
                Label::Class(c) => {
                    if cfg.pos <= n && c.contains(doc.symbol_at(cfg.pos).unwrap()) {
                        Some(Config {
                            pos: cfg.pos + 1,
                            state: t.target,
                            vars: Rc::clone(&cfg.vars),
                        })
                    } else {
                        None
                    }
                }
                Label::Open(v) => {
                    let id = v.id();
                    // Validity: a variable is opened at most once.
                    if cfg.vars.open.iter().any(|&(o, _)| o == id)
                        || cfg.vars.closed.iter().any(|&(c, _)| c == id)
                    {
                        None
                    } else {
                        let mut vars = (*cfg.vars).clone();
                        let at = vars.open.partition_point(|&(o, _)| o < id);
                        vars.open.insert(at, (id, cfg.pos));
                        Some(Config {
                            pos: cfg.pos,
                            state: t.target,
                            vars: Rc::new(vars),
                        })
                    }
                }
                Label::Close(v) => {
                    let id = v.id();
                    // Validity: only an open variable can be closed.
                    if let Some(idx) = cfg.vars.open.iter().position(|&(o, _)| o == id) {
                        let mut vars = (*cfg.vars).clone();
                        let (_, start_pos) = vars.open.remove(idx);
                        let at = vars.closed.partition_point(|&(c, _)| c < id);
                        vars.closed.insert(at, (id, Span::new(start_pos, cfg.pos)));
                        Some(Config {
                            pos: cfg.pos,
                            state: t.target,
                            vars: Rc::new(vars),
                        })
                    } else {
                        None
                    }
                }
            };
            if let Some(next) = next {
                if seen.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
    }
    MappingSet::from_mappings(result)
}

/// Computes `VAW(d)` restricted to mappings over a specific domain set
/// (convenience for tests).
pub fn interpret_with_domain(a: &Vsa, doc: &Document, domain: &spanner_core::VarSet) -> MappingSet {
    MappingSet::from_mappings(
        interpret(a, doc)
            .into_iter()
            .filter(|m| m.is_total_over(domain)),
    )
}

/// Returns `true` if the automaton has at least one valid accepting run on
/// the document (brute force; for tests).
pub fn interpret_nonempty(a: &Vsa, doc: &Document) -> bool {
    !interpret(a, doc).is_empty()
}

/// Converts a mapping into a canonical `BTreeMap<String, Span>` (handy for
/// assertions in tests).
pub fn mapping_to_map(m: &Mapping) -> BTreeMap<String, Span> {
    m.iter().map(|(v, s)| (v.name().to_string(), s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{ByteClass, VarSet, Variable};

    fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q0 = a.initial();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(q0, Label::Class(ByteClass::any()), q0);
        a.add_transition(q0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(Variable::new("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(q0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn example_2_3_on_single_letter() {
        // VAW(a) for the Example 2.3 automaton: either x gets some span of
        // "a", or the run skips x entirely (the q0 → q2 letter transition).
        let a = example_2_3();
        let doc = Document::new("a");
        let result = interpret(&a, &doc);
        // Mappings: {} (skip), x=[1,1⟩, x=[1,2⟩, x=[2,2⟩.
        assert_eq!(result.len(), 4);
        assert!(result.contains(&Mapping::new()));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::new(1, 2))])));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::empty(1))])));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::empty(2))])));
    }

    #[test]
    fn equivalent_regex_formula_semantics() {
        // The paper states Example 2.3's automaton equals
        // (Σ* x{Σ*} Σ*) ∨ Σ+. Cross-check via the rgx reference evaluator.
        use spanner_rgx::{parse, reference_eval};
        let alpha = parse("(.*{x:.*}.*)|(.+)").unwrap();
        let a = example_2_3();
        for text in ["", "a", "ab", "aba"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&a, &doc),
                reference_eval(&alpha, &doc),
                "mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn invalid_runs_are_discarded() {
        // An automaton that closes x without opening it: no valid run.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Close(Variable::new("x")), q1);
        a.set_accepting(q1, true);
        assert!(interpret(&a, &Document::new("")).is_empty());

        // An automaton that opens x but never closes it.
        let mut b = Vsa::new();
        let q1 = b.add_state();
        b.add_transition(0, Label::Open(Variable::new("x")), q1);
        b.set_accepting(q1, true);
        assert!(interpret(&b, &Document::new("")).is_empty());
    }

    #[test]
    fn double_open_is_invalid() {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        let q3 = a.add_state();
        a.add_transition(0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Open(Variable::new("x")), q2);
        a.add_transition(q2, Label::Close(Variable::new("x")), q3);
        a.set_accepting(q3, true);
        assert!(interpret(&a, &Document::new("")).is_empty());
    }

    #[test]
    fn epsilon_cycles_terminate() {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Epsilon, q1);
        a.add_transition(q1, Label::Epsilon, 0);
        a.set_accepting(q1, true);
        let r = interpret(&a, &Document::new(""));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Mapping::new()));
    }

    #[test]
    fn domain_filter() {
        let a = example_2_3();
        let doc = Document::new("a");
        let with_x = interpret_with_domain(&a, &doc, &VarSet::from_iter(["x"]));
        assert_eq!(with_x.len(), 3);
        let without = interpret_with_domain(&a, &doc, &VarSet::new());
        assert_eq!(without.len(), 1);
    }
}
