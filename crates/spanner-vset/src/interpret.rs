//! Brute-force interpretation of vset-automata (test oracle).
//!
//! [`interpret`] computes `VAW(d)` by a fixpoint over run configurations.
//! It materializes every reachable configuration `(position, state, partial
//! mapping, open variables)`, so it is exponential in the number of variables
//! and only suitable for small inputs. The production evaluation path lives
//! in `spanner-enum`; this interpreter exists so that the automaton
//! constructions in this crate can be validated independently of it.

use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{Document, Mapping, MappingSet, Span};
use std::collections::{BTreeMap, HashSet};

/// A run configuration of the interpreter.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Config {
    pos: u32,
    state: StateId,
    /// Variables already closed, with their spans.
    closed: Vec<(String, Span)>,
    /// Variables currently open, with their opening positions.
    open: Vec<(String, u32)>,
}

/// Computes `VAW(d)`: the set of mappings of all **valid** accepting runs of
/// the automaton on the document.
pub fn interpret(a: &Vsa, doc: &Document) -> MappingSet {
    let n = doc.len() as u32;
    let mut result = MappingSet::new();
    let mut seen: HashSet<Config> = HashSet::new();
    let start = Config {
        pos: 1,
        state: a.initial(),
        closed: Vec::new(),
        open: Vec::new(),
    };
    let mut stack = vec![start.clone()];
    seen.insert(start);

    while let Some(cfg) = stack.pop() {
        if cfg.pos == n + 1 && a.is_accepting(cfg.state) && cfg.open.is_empty() {
            result.insert(Mapping::from_pairs(
                cfg.closed.iter().map(|(v, s)| (v.as_str(), *s)),
            ));
        }
        for t in a.transitions_from(cfg.state) {
            let next = match &t.label {
                Label::Epsilon => Some(Config {
                    state: t.target,
                    ..cfg.clone()
                }),
                Label::Class(c) => {
                    if cfg.pos <= n && c.contains(doc.symbol_at(cfg.pos).unwrap()) {
                        Some(Config {
                            pos: cfg.pos + 1,
                            state: t.target,
                            closed: cfg.closed.clone(),
                            open: cfg.open.clone(),
                        })
                    } else {
                        None
                    }
                }
                Label::Open(v) => {
                    let name = v.name();
                    // Validity: a variable is opened at most once.
                    if cfg.open.iter().any(|(o, _)| o == name)
                        || cfg.closed.iter().any(|(c, _)| c == name)
                    {
                        None
                    } else {
                        let mut open = cfg.open.clone();
                        open.push((name.to_string(), cfg.pos));
                        open.sort();
                        Some(Config {
                            state: t.target,
                            open,
                            ..cfg.clone()
                        })
                    }
                }
                Label::Close(v) => {
                    let name = v.name();
                    // Validity: only an open variable can be closed.
                    if let Some(idx) = cfg.open.iter().position(|(o, _)| o == name) {
                        let mut open = cfg.open.clone();
                        let (_, start_pos) = open.remove(idx);
                        let mut closed = cfg.closed.clone();
                        closed.push((name.to_string(), Span::new(start_pos, cfg.pos)));
                        closed.sort();
                        Some(Config {
                            state: t.target,
                            open,
                            closed,
                            ..cfg.clone()
                        })
                    } else {
                        None
                    }
                }
            };
            if let Some(next) = next {
                if seen.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
    }
    result
}

/// Computes `VAW(d)` restricted to mappings over a specific domain set
/// (convenience for tests).
pub fn interpret_with_domain(a: &Vsa, doc: &Document, domain: &spanner_core::VarSet) -> MappingSet {
    MappingSet::from_mappings(
        interpret(a, doc)
            .into_iter()
            .filter(|m| m.is_total_over(domain)),
    )
}

/// Returns `true` if the automaton has at least one valid accepting run on
/// the document (brute force; for tests).
pub fn interpret_nonempty(a: &Vsa, doc: &Document) -> bool {
    !interpret(a, doc).is_empty()
}

/// Converts a mapping into a canonical `BTreeMap<String, Span>` (handy for
/// assertions in tests).
pub fn mapping_to_map(m: &Mapping) -> BTreeMap<String, Span> {
    m.iter().map(|(v, s)| (v.name().to_string(), s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{ByteClass, VarSet, Variable};

    fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q0 = a.initial();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(q0, Label::Class(ByteClass::any()), q0);
        a.add_transition(q0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(Variable::new("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(q0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn example_2_3_on_single_letter() {
        // VAW(a) for the Example 2.3 automaton: either x gets some span of
        // "a", or the run skips x entirely (the q0 → q2 letter transition).
        let a = example_2_3();
        let doc = Document::new("a");
        let result = interpret(&a, &doc);
        // Mappings: {} (skip), x=[1,1⟩, x=[1,2⟩, x=[2,2⟩.
        assert_eq!(result.len(), 4);
        assert!(result.contains(&Mapping::new()));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::new(1, 2))])));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::empty(1))])));
        assert!(result.contains(&Mapping::from_pairs([("x", Span::empty(2))])));
    }

    #[test]
    fn equivalent_regex_formula_semantics() {
        // The paper states Example 2.3's automaton equals
        // (Σ* x{Σ*} Σ*) ∨ Σ+. Cross-check via the rgx reference evaluator.
        use spanner_rgx::{parse, reference_eval};
        let alpha = parse("(.*{x:.*}.*)|(.+)").unwrap();
        let a = example_2_3();
        for text in ["", "a", "ab", "aba"] {
            let doc = Document::new(text);
            assert_eq!(
                interpret(&a, &doc),
                reference_eval(&alpha, &doc),
                "mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn invalid_runs_are_discarded() {
        // An automaton that closes x without opening it: no valid run.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Close(Variable::new("x")), q1);
        a.set_accepting(q1, true);
        assert!(interpret(&a, &Document::new("")).is_empty());

        // An automaton that opens x but never closes it.
        let mut b = Vsa::new();
        let q1 = b.add_state();
        b.add_transition(0, Label::Open(Variable::new("x")), q1);
        b.set_accepting(q1, true);
        assert!(interpret(&b, &Document::new("")).is_empty());
    }

    #[test]
    fn double_open_is_invalid() {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        let q3 = a.add_state();
        a.add_transition(0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Open(Variable::new("x")), q2);
        a.add_transition(q2, Label::Close(Variable::new("x")), q3);
        a.set_accepting(q3, true);
        assert!(interpret(&a, &Document::new("")).is_empty());
    }

    #[test]
    fn epsilon_cycles_terminate() {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Epsilon, q1);
        a.add_transition(q1, Label::Epsilon, 0);
        a.set_accepting(q1, true);
        let r = interpret(&a, &Document::new(""));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Mapping::new()));
    }

    #[test]
    fn domain_filter() {
        let a = example_2_3();
        let doc = Document::new("a");
        let with_x = interpret_with_domain(&a, &doc, &VarSet::from_iter(["x"]));
        assert_eq!(with_x.len(), 3);
        let without = interpret_with_domain(&a, &doc, &VarSet::new());
        assert_eq!(without.len(), 1);
    }
}
