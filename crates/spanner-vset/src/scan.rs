//! The scan-core fast path: literal prefilters and a lazy boolean DFA.
//!
//! Most documents in a corpus match a given query *nowhere*. Full
//! enumeration machinery (match-graph backward pass, op-closure DFS) costs
//! `O(|d| · states)` just to discover that, so [`CompiledVsa`] carries a
//! [`ScanPlan`] — a boolean pre-pass with a ladder of successively stronger
//! (and successively more expensive) tiers:
//!
//! 1. **Static prefilters**, computed once at compile time: the shortest
//!    accepted document length, the class of possible first bytes (formulas
//!    are anchored, so the first byte of an accepted document must start
//!    some consuming transition out of the initial closure), and up to
//!    [`MAX_FACTORS`] *required factors* — byte classes such that every
//!    accepted document contains at least one byte of each (a class is
//!    required iff forbidding its bytes empties the language). A document
//!    failing any prefilter is skipped without scanning a single state.
//! 2. **Lazy boolean DFA**: an on-demand subset construction over the
//!    compiled byte classes, with variable operations treated as ε (which
//!    is exact for boolean acceptance — they consume no input). The budget
//!    [`DFA_CELL_BUDGET`] bounds `states × classes`; within it, scanning is
//!    one table lookup per byte, with per-state acceleration: an accepting
//!    state that loops on every class accepts the rest of the document
//!    immediately, and a state that self-loops on most bytes skips ahead
//!    with a memchr-style stop-byte loop.
//! 3. **NFA fallback**: when the subset construction exceeds the budget,
//!    the pre-pass steps a [`StateSet`] frontier byte-by-byte with an
//!    empty-frontier early exit — never slower than the enumeration path it
//!    guards.
//!
//! Results are unchanged by construction: the pre-pass answers exactly the
//! boolean question "does the automaton have an accepting run on `d`?",
//! which for the sequential automata the enumerator accepts coincides with
//! "is there at least one mapping" ([`MatchGraph`]'s nonemptiness uses the
//! same state-level reachability). The executor consults the pre-pass only
//! to return an empty result early.
//!
//! [`MatchGraph`]: ../spanner_enum/matchgraph/struct.MatchGraph.html

use crate::compiled::{CompiledVsa, StateSet};
use spanner_core::{ByteClass, Document, FxHashMap};
use std::sync::OnceLock;

/// Maximum number of required factors kept by the analysis.
pub const MAX_FACTORS: usize = 4;

/// Budget on boolean-DFA table cells (`states × byte classes`); the subset
/// construction aborts past it and the pre-pass falls back to NFA stepping.
pub const DFA_CELL_BUDGET: usize = 1 << 17;

/// Dead-state marker in the DFA transition table.
const DEAD: u32 = u32::MAX;

/// The verdict of [`CompiledVsa::prescan`] on one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreScan {
    /// A static prefilter (length / first byte / required factor) proved the
    /// document cannot match — no states were scanned.
    Skip,
    /// The boolean scan (DFA or NFA frontier) ran and rejected.
    Reject,
    /// The automaton has an accepting run on the document (for sequential
    /// automata: at least one mapping exists).
    Accept,
}

/// Per-state scan acceleration of the boolean DFA.
#[derive(Debug, Clone)]
enum Accel {
    /// No acceleration: one table lookup per byte.
    None,
    /// Accepting state looping on every class: the rest of the document is
    /// irrelevant, accept immediately.
    AcceptSink,
    /// The state self-loops on every byte except this single stop byte:
    /// skip ahead with a vectorizable byte search.
    SkipToByte(u8),
    /// The state self-loops on every byte outside the stop class: skip
    /// ahead with a bitmap test per byte.
    SkipToClass(ByteClass),
}

/// The lazily built boolean DFA (tier 2 of the ladder).
#[derive(Debug, Clone)]
struct MatchDfa {
    class_count: usize,
    /// `table[q * class_count + class]` = successor, or [`DEAD`].
    table: Vec<u32>,
    accepting: Vec<bool>,
    accel: Vec<Accel>,
}

/// The compile-time scan analysis attached to every [`CompiledVsa`].
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// Length of the shortest accepted document; `None` iff the language is
    /// empty (every document is skipped).
    min_len: Option<usize>,
    /// Possible first bytes of an accepted non-empty document; `None` when
    /// unconstrained (all 256 bytes possible).
    prefix_class: Option<ByteClass>,
    /// Byte classes that every accepted document must contain at least one
    /// byte of (rarest first).
    required_factors: Vec<ByteClass>,
    /// The boolean DFA, built on first use; `None` inside means the subset
    /// construction exceeded [`DFA_CELL_BUDGET`] (NFA fallback).
    dfa: OnceLock<Option<MatchDfa>>,
}

impl ScanPlan {
    /// The inert placeholder used while the owning [`CompiledVsa`] is still
    /// under construction (replaced by [`ScanPlan::analyze`] immediately).
    pub(crate) fn placeholder() -> ScanPlan {
        ScanPlan {
            min_len: None,
            prefix_class: None,
            required_factors: Vec::new(),
            dfa: OnceLock::new(),
        }
    }

    /// Runs the static analysis over a freshly compiled automaton.
    pub(crate) fn analyze(compiled: &CompiledVsa) -> ScanPlan {
        let min_len = min_accepted_len(compiled);
        if min_len.is_none() {
            // Empty language: the filters are never consulted.
            return ScanPlan {
                min_len,
                prefix_class: None,
                required_factors: Vec::new(),
                dfa: OnceLock::new(),
            };
        }
        ScanPlan {
            min_len,
            prefix_class: prefix_class(compiled),
            required_factors: required_factors(compiled),
            dfa: OnceLock::new(),
        }
    }

    /// Length of the shortest accepted document (`None`: empty language).
    pub fn min_len(&self) -> Option<usize> {
        self.min_len
    }

    /// The anchored-prefix class: possible first bytes of an accepted
    /// non-empty document (`None` when unconstrained).
    pub fn prefix_class(&self) -> Option<&ByteClass> {
        self.prefix_class.as_ref()
    }

    /// The required factors: byte classes every accepted document contains.
    pub fn required_factors(&self) -> &[ByteClass] {
        &self.required_factors
    }

    /// Whether the boolean DFA has been built yet, and with how many states:
    /// `None` = not built yet, `Some(None)` = budget exceeded (NFA
    /// fallback), `Some(Some(n))` = built with `n` states.
    pub fn dfa_states(&self) -> Option<Option<usize>> {
        self.dfa
            .get()
            .map(|d| d.as_ref().map(|d| d.accepting.len()))
    }

    /// Whether the static prefilters alone reject the document (tier 1; no
    /// state is scanned). Exact refusals only: `false` means "scan needed",
    /// not "matches".
    fn filters_reject(&self, bytes: &[u8]) -> bool {
        let Some(min_len) = self.min_len else {
            return true; // empty language
        };
        if bytes.len() < min_len {
            return true;
        }
        if let (Some(class), Some(&first)) = (&self.prefix_class, bytes.first()) {
            if !class.contains(first) {
                return true;
            }
        }
        self.required_factors
            .iter()
            .any(|f| !bytes.iter().any(|&b| f.contains(b)))
    }
}

impl CompiledVsa {
    /// The compile-time scan analysis (prefilters + lazy-DFA handle).
    pub fn scan_plan(&self) -> &ScanPlan {
        self.scan()
    }

    /// Runs the boolean pre-pass ladder on one document (see the module
    /// docs): static prefilters, then the lazy DFA (NFA frontier fallback
    /// past the state budget).
    pub fn prescan(&self, doc: &Document) -> PreScan {
        let plan = self.scan();
        let bytes = doc.bytes();
        if plan.filters_reject(bytes) {
            return PreScan::Skip;
        }
        let accepted = match plan.dfa.get_or_init(|| build_dfa(self)) {
            Some(dfa) => dfa_scan(self, dfa, bytes),
            None => nfa_scan(self, bytes),
        };
        if accepted {
            PreScan::Accept
        } else {
            PreScan::Reject
        }
    }

    /// Whether the automaton has an accepting run on the document — the
    /// boolean projection of evaluation, without touching the variable-op
    /// machinery. For sequential automata this is exactly "the mapping set
    /// is nonempty".
    pub fn matches_anywhere(&self, doc: &Document) -> bool {
        self.prescan(doc) == PreScan::Accept
    }

    /// Forces the boolean DFA to build and reports its state count; `None`
    /// means the subset construction exceeded [`DFA_CELL_BUDGET`] and the
    /// pre-pass runs on the NFA frontier fallback.
    pub fn boolean_dfa_states(&self) -> Option<usize> {
        self.scan()
            .dfa
            .get_or_init(|| build_dfa(self))
            .as_ref()
            .map(|d| d.accepting.len())
    }
}

/// BFS over consuming transitions (with zero-closures between letters):
/// the minimum number of bytes on any path from the initial closure to an
/// accepting state. `None` iff no accepting state is reachable at all.
fn min_accepted_len(compiled: &CompiledVsa) -> Option<usize> {
    let states = compiled.state_count();
    let mut dist: Vec<Option<usize>> = vec![None; states];
    let mut queue = std::collections::VecDeque::new();
    for q in compiled.zero_closure(compiled.initial()).iter() {
        if dist[q].is_none() {
            dist[q] = Some(0);
            queue.push_back(q);
        }
    }
    let mut best: Option<usize> = None;
    while let Some(q) = queue.pop_front() {
        let d = dist[q].expect("queued states have a distance");
        if compiled.is_accepting(q) {
            best = Some(best.map_or(d, |b| b.min(d)));
            // BFS: the first accepting state found is at minimum distance.
            break;
        }
        for class in 0..compiled.class_count() {
            for &t in compiled.byte_targets(q, class) {
                for r in compiled.zero_closure(t).iter() {
                    if dist[r].is_none() {
                        dist[r] = Some(d + 1);
                        queue.push_back(r);
                    }
                }
            }
        }
    }
    best
}

/// The union of the byte classes of consuming transitions leaving the
/// initial zero-closure — an overapproximation of the first byte of any
/// accepted non-empty document. `None` when every byte is possible.
fn prefix_class(compiled: &CompiledVsa) -> Option<ByteClass> {
    let start = compiled.zero_closure(compiled.initial());
    let mut class = ByteClass::empty();
    for b in 0..=255u8 {
        let c = compiled.class_of(b);
        if start
            .iter()
            .any(|q| !compiled.byte_targets(q, c).is_empty())
        {
            class.insert(b);
        }
    }
    (class.len() < 256).then_some(class)
}

/// Finds byte classes that every accepted document must contain: a class is
/// required iff the automaton restricted to the remaining bytes accepts
/// nothing. Candidates are the compiled byte-class partition (skipping
/// classes no transition consumes). Kept rarest-first, at most
/// [`MAX_FACTORS`].
fn required_factors(compiled: &CompiledVsa) -> Vec<ByteClass> {
    let class_count = compiled.class_count();
    if class_count > 64 {
        return Vec::new();
    }
    // The byte set of each compiled class.
    let mut class_bytes: Vec<ByteClass> = vec![ByteClass::empty(); class_count];
    for b in 0..=255u8 {
        class_bytes[compiled.class_of(b)].insert(b);
    }
    let mut factors: Vec<ByteClass> = Vec::new();
    for (avoid, bytes) in class_bytes.iter().enumerate() {
        // Is any accepting state reachable using only classes != `avoid`?
        let mut reach = compiled.zero_closure(compiled.initial()).clone();
        let mut stack: Vec<usize> = reach.iter().collect();
        let mut alive = reach.intersects(compiled.accepting());
        while let Some(q) = stack.pop() {
            if alive {
                break;
            }
            for class in 0..class_count {
                if class == avoid {
                    continue;
                }
                for &t in compiled.byte_targets(q, class) {
                    for r in compiled.zero_closure(t).iter() {
                        if reach.insert(r) {
                            if compiled.is_accepting(r) {
                                alive = true;
                            }
                            stack.push(r);
                        }
                    }
                }
            }
        }
        if !alive {
            factors.push(*bytes);
            if factors.len() == MAX_FACTORS {
                break;
            }
        }
    }
    factors.sort_by_key(ByteClass::len);
    factors
}

/// Bounded subset construction over the compiled byte classes, variable
/// operations as ε (exact for boolean acceptance). `None` past the budget.
fn build_dfa(compiled: &CompiledVsa) -> Option<MatchDfa> {
    let class_count = compiled.class_count().max(1);
    let states = compiled.state_count();
    let start = compiled.zero_closure(compiled.initial()).clone();

    let mut index: FxHashMap<StateSet, u32> = FxHashMap::default();
    let mut subsets: Vec<StateSet> = vec![start.clone()];
    let mut accepting: Vec<bool> = vec![start.intersects(compiled.accepting())];
    let mut table: Vec<u32> = Vec::new();
    index.insert(start, 0);

    let mut next_subset = 0usize;
    while next_subset < subsets.len() {
        let from = next_subset;
        next_subset += 1;
        let mut row = vec![DEAD; class_count];
        for (class, slot) in row.iter_mut().enumerate() {
            let mut next = StateSet::new(states);
            for q in subsets[from].iter() {
                for &t in compiled.byte_targets(q, class) {
                    next.insert(t);
                }
            }
            if next.is_empty() {
                continue;
            }
            let mut closed = StateSet::new(states);
            for t in next.iter() {
                closed.union_with(compiled.zero_closure(t));
            }
            let id = match index.get(&closed) {
                Some(&id) => id,
                None => {
                    if (subsets.len() + 1) * class_count > DFA_CELL_BUDGET {
                        return None;
                    }
                    let id = subsets.len() as u32;
                    accepting.push(closed.intersects(compiled.accepting()));
                    subsets.push(closed.clone());
                    index.insert(closed, id);
                    id
                }
            };
            *slot = id;
        }
        table.extend_from_slice(&row);
    }

    // Rows are built lazily above, so pad any states discovered after the
    // last processed row (cannot happen — the worklist drains fully — but
    // keep the invariant explicit).
    debug_assert_eq!(table.len(), subsets.len() * class_count);

    let accel = (0..subsets.len())
        .map(|q| {
            let row = &table[q * class_count..(q + 1) * class_count];
            let self_loops = row.iter().filter(|&&t| t == q as u32).count();
            if self_loops == 0 {
                return Accel::None;
            }
            if accepting[q] && self_loops == class_count {
                return Accel::AcceptSink;
            }
            // Stop bytes: those that leave the state.
            let mut stop = ByteClass::empty();
            for b in 0..=255u8 {
                if row[compiled.class_of(b)] != q as u32 {
                    stop.insert(b);
                }
            }
            match stop.len() {
                0 => Accel::None, // non-accepting total self-loop: dead in
                // practice (can never leave), plain stepping is fine.
                1 => Accel::SkipToByte(stop.iter().next().expect("one stop byte")),
                2..=64 => Accel::SkipToClass(stop),
                _ => Accel::None,
            }
        })
        .collect();

    Some(MatchDfa {
        class_count,
        table,
        accepting,
        accel,
    })
}

/// Runs the boolean DFA over the document bytes.
fn dfa_scan(compiled: &CompiledVsa, dfa: &MatchDfa, bytes: &[u8]) -> bool {
    let cc = dfa.class_count;
    let mut q = 0usize;
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        match &dfa.accel[q] {
            Accel::AcceptSink => return true,
            Accel::SkipToByte(stop) => match bytes[i..].iter().position(|&b| b == *stop) {
                Some(off) => i += off,
                None => return dfa.accepting[q],
            },
            Accel::SkipToClass(stop) => match bytes[i..].iter().position(|&b| stop.contains(b)) {
                Some(off) => i += off,
                None => return dfa.accepting[q],
            },
            Accel::None => {}
        }
        let t = dfa.table[q * cc + compiled.class_of(bytes[i])];
        if t == DEAD {
            return false;
        }
        q = t as usize;
        i += 1;
    }
    dfa.accepting[q]
}

/// NFA frontier stepping with zero-closures (the budget-exhaustion
/// fallback): exact boolean acceptance, early exit on an empty frontier.
fn nfa_scan(compiled: &CompiledVsa, bytes: &[u8]) -> bool {
    let states = compiled.state_count();
    let mut current = compiled.zero_closure(compiled.initial()).clone();
    let mut next = StateSet::new(states);
    let mut closed = StateSet::new(states);
    for &b in bytes {
        compiled.step_frontier(&current, b, &mut next);
        if next.is_empty() {
            return false;
        }
        closed.clear();
        for t in next.iter() {
            closed.union_with(compiled.zero_closure(t));
        }
        std::mem::swap(&mut current, &mut closed);
    }
    current.intersects(compiled.accepting())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::interpret_nonempty;
    use crate::thompson::compile;
    use spanner_rgx::parse;

    fn compiled(pattern: &str) -> (crate::automaton::Vsa, CompiledVsa) {
        let vsa = compile(&parse(pattern).unwrap());
        let c = CompiledVsa::compile(&vsa);
        (vsa, c)
    }

    #[test]
    fn prescan_agrees_with_the_interpreter() {
        let patterns = [
            ".*{x:a+}.*",
            "{x:[a-z]+}@{y:[a-z]+}",
            "a{x:b*}c",
            "{x:a}|{y:b}",
            ".*abc.*",
            "()",
        ];
        let docs = ["", "a", "abc", "xyz", "foo@bar", "aaabbb", "cab", "b"];
        for pattern in patterns {
            let (vsa, c) = compiled(pattern);
            for text in docs {
                let doc = Document::new(text);
                assert_eq!(
                    c.matches_anywhere(&doc),
                    interpret_nonempty(&vsa, &doc),
                    "{pattern:?} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn min_len_and_prefix_filters_fire() {
        let (_, c) = compiled("abc{x:d+}");
        let plan = c.scan_plan();
        assert_eq!(plan.min_len(), Some(4));
        let prefix = plan.prefix_class().expect("anchored prefix");
        assert!(prefix.contains(b'a') && !prefix.contains(b'b'));
        // Too short and wrong first byte are both skips, not scans.
        assert_eq!(c.prescan(&Document::new("ab")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("xbcdddd")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("abcd")), PreScan::Accept);
    }

    #[test]
    fn required_factors_are_found_and_filter_documents() {
        let (_, c) = compiled(".*{x:a+}@.*");
        let plan = c.scan_plan();
        // '@' must occur in every accepted document; 'a' as well.
        assert!(
            plan.required_factors()
                .iter()
                .any(|f| f.contains(b'@') && f.len() == 1),
            "{:?}",
            plan.required_factors()
        );
        assert_eq!(c.prescan(&Document::new("aaaa")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("aa@x")), PreScan::Accept);
        // Adversarial: factors present but no match — the DFA rejects.
        assert_eq!(c.prescan(&Document::new("@aaa")), PreScan::Reject);
    }

    #[test]
    fn empty_language_is_skipped() {
        let (_, c) = compiled("[]");
        assert_eq!(c.scan_plan().min_len(), None);
        assert_eq!(c.prescan(&Document::new("")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("anything")), PreScan::Skip);
    }

    #[test]
    fn dfa_is_built_lazily_and_within_budget() {
        let (_, c) = compiled(".*{x:a+}.*");
        assert_eq!(c.scan_plan().dfa_states(), None, "not built yet");
        assert!(c.matches_anywhere(&Document::new("xxax")));
        let states = c.scan_plan().dfa_states().expect("built now");
        assert!(states.is_some(), "small automaton fits the budget");
        assert_eq!(c.boolean_dfa_states(), states);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_nfa_stepping() {
        // (a|b)* a (a|b)^{n-1} needs ≥ 2^{n-1} DFA states; n = 18 blows the
        // cell budget so the pre-pass must run on the NFA frontier — and
        // still answer exactly.
        let n = 18;
        let suffix = "(a|b)".repeat(n - 1);
        let (vsa, c) = compiled(&format!("(a|b)*a{suffix}"));
        assert_eq!(c.boolean_dfa_states(), None, "budget must be exceeded");
        for text in [
            "a".repeat(n),
            "b".repeat(n),
            format!("bba{}", "b".repeat(n - 1)),
            "ab".repeat(4),
        ] {
            let doc = Document::new(&text);
            assert_eq!(
                c.matches_anywhere(&doc),
                interpret_nonempty(&vsa, &doc),
                "{text:?}"
            );
        }
    }

    #[test]
    fn accept_sink_short_circuits_long_documents() {
        let (_, c) = compiled(".*needle.*");
        let mut text = "x".repeat(10_000);
        text.push_str("needle");
        text.push_str(&"y".repeat(10_000));
        assert!(c.matches_anywhere(&Document::new(text)));
        assert!(!c.matches_anywhere(&Document::new("x".repeat(10_000))));
    }

    #[test]
    fn scan_plan_survives_clone() {
        let (_, c) = compiled(".*{x:a+}.*");
        assert!(c.matches_anywhere(&Document::new("a")));
        let cloned = c.clone();
        assert!(cloned
            .scan_plan()
            .dfa_states()
            .expect("cloned built DFA")
            .is_some());
        assert!(cloned.matches_anywhere(&Document::new("a")));
        assert!(!cloned.matches_anywhere(&Document::new("b")));
    }
}
