//! The scan-core fast path: literal prefilters and a lazy boolean DFA.
//!
//! Most documents in a corpus match a given query *nowhere*. Full
//! enumeration machinery (match-graph backward pass, op-closure DFS) costs
//! `O(|d| · states)` just to discover that, so [`CompiledVsa`] carries a
//! [`ScanPlan`] — a boolean pre-pass with a ladder of successively stronger
//! (and successively more expensive) tiers:
//!
//! 1. **Static prefilters**, computed once at compile time: the shortest
//!    accepted document length, the class of possible first bytes (formulas
//!    are anchored, so the first byte of an accepted document must start
//!    some consuming transition out of the initial closure), and up to
//!    [`MAX_FACTORS`] *required factors* — byte classes such that every
//!    accepted document contains at least one byte of each (a class is
//!    required iff forbidding its bytes empties the language). A document
//!    failing any prefilter is skipped without scanning a single state.
//! 2. **Lazy boolean DFA**: an on-demand subset construction over the
//!    compiled byte classes, with variable operations treated as ε (which
//!    is exact for boolean acceptance — they consume no input). The budget
//!    [`DFA_CELL_BUDGET`] bounds `states × classes`; within it, scanning is
//!    one table lookup per byte, with per-state acceleration: an accepting
//!    state that loops on every class accepts the rest of the document
//!    immediately, and a state that self-loops on most bytes skips ahead
//!    with a memchr-style stop-byte loop.
//! 3. **NFA fallback**: when the subset construction exceeds the budget,
//!    the pre-pass steps a [`StateSet`] frontier byte-by-byte with an
//!    empty-frontier early exit — never slower than the enumeration path it
//!    guards.
//!
//! Results are unchanged by construction: the pre-pass answers exactly the
//! boolean question "does the automaton have an accepting run on `d`?",
//! which for the sequential automata the enumerator accepts coincides with
//! "is there at least one mapping" ([`MatchGraph`]'s nonemptiness uses the
//! same state-level reachability). The executor consults the pre-pass only
//! to return an empty result early.
//!
//! [`MatchGraph`]: ../spanner_enum/matchgraph/struct.MatchGraph.html

use crate::compiled::{CompiledVsa, StateSet};
use spanner_core::{ByteClass, Document, FxHashMap};
use std::sync::OnceLock;

/// Maximum number of required factors kept by the analysis.
pub const MAX_FACTORS: usize = 4;

/// Maximum byte length of an extracted required literal.
pub const MAX_LITERAL_LEN: usize = 16;

/// Maximum number of required literals kept by the analysis.
pub const MAX_LITERALS: usize = 4;

/// State-count ceiling for literal extraction; the analysis is skipped on
/// automata past it — literals are an optimization, never a requirement.
const LITERAL_STATE_BUDGET: usize = 512;

/// Budget on requiredness-verification calls per automaton, bounding the
/// greedy literal extension.
const LITERAL_VERIFY_BUDGET: usize = 256;

/// Budget on boolean-DFA table cells (`states × byte classes`); the subset
/// construction aborts past it and the pre-pass falls back to NFA stepping.
pub const DFA_CELL_BUDGET: usize = 1 << 17;

/// Dead-state marker in the DFA transition table.
const DEAD: u32 = u32::MAX;

/// The verdict of [`CompiledVsa::prescan`] on one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreScan {
    /// A static prefilter (length / first byte / required factor) proved the
    /// document cannot match — no states were scanned.
    Skip,
    /// The boolean scan (DFA or NFA frontier) ran and rejected.
    Reject,
    /// The automaton has an accepting run on the document (for sequential
    /// automata: at least one mapping exists).
    Accept,
}

/// Per-state scan acceleration of the boolean DFA.
#[derive(Debug, Clone)]
enum Accel {
    /// No acceleration: one table lookup per byte.
    None,
    /// Accepting state looping on every class: the rest of the document is
    /// irrelevant, accept immediately.
    AcceptSink,
    /// The state self-loops on every byte except this single stop byte:
    /// skip ahead with a vectorizable byte search.
    SkipToByte(u8),
    /// The state self-loops on every byte outside the stop class: skip
    /// ahead with a bitmap test per byte.
    SkipToClass(ByteClass),
}

/// The lazily built boolean DFA (tier 2 of the ladder).
#[derive(Debug, Clone)]
struct MatchDfa {
    class_count: usize,
    /// `table[q * class_count + class]` = successor, or [`DEAD`].
    table: Vec<u32>,
    accepting: Vec<bool>,
    accel: Vec<Accel>,
}

/// The compile-time scan analysis attached to every [`CompiledVsa`].
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// Length of the shortest accepted document; `None` iff the language is
    /// empty (every document is skipped).
    min_len: Option<usize>,
    /// Possible first bytes of an accepted non-empty document; `None` when
    /// unconstrained (all 256 bytes possible).
    prefix_class: Option<ByteClass>,
    /// Byte classes that every accepted document must contain at least one
    /// byte of (rarest first).
    required_factors: Vec<ByteClass>,
    /// Byte strings that every accepted document must contain as a factor
    /// (longest first): single-byte required factors and anchored-prefix
    /// bytes, greedily extended with singleton-class bytes and verified
    /// exactly against the automaton. Consumed by corpus-level indexes.
    required_literals: Vec<Vec<u8>>,
    /// The boolean DFA, built on first use; `None` inside means the subset
    /// construction exceeded [`DFA_CELL_BUDGET`] (NFA fallback).
    dfa: OnceLock<Option<MatchDfa>>,
}

impl ScanPlan {
    /// The inert placeholder used while the owning [`CompiledVsa`] is still
    /// under construction (replaced by [`ScanPlan::analyze`] immediately).
    pub(crate) fn placeholder() -> ScanPlan {
        ScanPlan {
            min_len: None,
            prefix_class: None,
            required_factors: Vec::new(),
            required_literals: Vec::new(),
            dfa: OnceLock::new(),
        }
    }

    /// Runs the static analysis over a freshly compiled automaton.
    pub(crate) fn analyze(compiled: &CompiledVsa) -> ScanPlan {
        let min_len = min_accepted_len(compiled);
        if min_len.is_none() {
            // Empty language: the filters are never consulted.
            return ScanPlan {
                min_len,
                prefix_class: None,
                required_factors: Vec::new(),
                required_literals: Vec::new(),
                dfa: OnceLock::new(),
            };
        }
        let prefix_class = prefix_class(compiled);
        let required_factors = required_factors(compiled);
        let required_literals = required_literals(
            compiled,
            min_len.expect("nonempty language"),
            prefix_class.as_ref(),
            &required_factors,
        );
        ScanPlan {
            min_len,
            prefix_class,
            required_factors,
            required_literals,
            dfa: OnceLock::new(),
        }
    }

    /// Length of the shortest accepted document (`None`: empty language).
    pub fn min_len(&self) -> Option<usize> {
        self.min_len
    }

    /// The anchored-prefix class: possible first bytes of an accepted
    /// non-empty document (`None` when unconstrained).
    pub fn prefix_class(&self) -> Option<&ByteClass> {
        self.prefix_class.as_ref()
    }

    /// The required factors: byte classes every accepted document contains.
    pub fn required_factors(&self) -> &[ByteClass] {
        &self.required_factors
    }

    /// The required literals: byte strings every accepted document contains
    /// as a factor (longest first). Empty when the analysis could not pin
    /// any down — callers must fall back to scanning every document.
    pub fn required_literals(&self) -> &[Vec<u8>] {
        &self.required_literals
    }

    /// Whether the boolean DFA has been built yet, and with how many states:
    /// `None` = not built yet, `Some(None)` = budget exceeded (NFA
    /// fallback), `Some(Some(n))` = built with `n` states.
    pub fn dfa_states(&self) -> Option<Option<usize>> {
        self.dfa
            .get()
            .map(|d| d.as_ref().map(|d| d.accepting.len()))
    }

    /// Whether the static prefilters alone reject the document (tier 1; no
    /// state is scanned). Exact refusals only: `false` means "scan needed",
    /// not "matches".
    fn filters_reject(&self, bytes: &[u8]) -> bool {
        let Some(min_len) = self.min_len else {
            return true; // empty language
        };
        if bytes.len() < min_len {
            return true;
        }
        if let (Some(class), Some(&first)) = (&self.prefix_class, bytes.first()) {
            if !class.contains(first) {
                return true;
            }
        }
        self.required_factors
            .iter()
            .any(|f| !bytes.iter().any(|&b| f.contains(b)))
    }
}

impl CompiledVsa {
    /// The compile-time scan analysis (prefilters + lazy-DFA handle).
    pub fn scan_plan(&self) -> &ScanPlan {
        self.scan()
    }

    /// Runs the boolean pre-pass ladder on one document (see the module
    /// docs): static prefilters, then the lazy DFA (NFA frontier fallback
    /// past the state budget).
    pub fn prescan(&self, doc: &Document) -> PreScan {
        let plan = self.scan();
        let bytes = doc.bytes();
        if plan.filters_reject(bytes) {
            return PreScan::Skip;
        }
        let accepted = match plan.dfa.get_or_init(|| build_dfa(self)) {
            Some(dfa) => dfa_scan(self, dfa, bytes),
            None => nfa_scan(self, bytes),
        };
        if accepted {
            PreScan::Accept
        } else {
            PreScan::Reject
        }
    }

    /// Whether the automaton has an accepting run on the document — the
    /// boolean projection of evaluation, without touching the variable-op
    /// machinery. For sequential automata this is exactly "the mapping set
    /// is nonempty".
    pub fn matches_anywhere(&self, doc: &Document) -> bool {
        self.prescan(doc) == PreScan::Accept
    }

    /// Forces the boolean DFA to build and reports its state count; `None`
    /// means the subset construction exceeded [`DFA_CELL_BUDGET`] and the
    /// pre-pass runs on the NFA frontier fallback.
    pub fn boolean_dfa_states(&self) -> Option<usize> {
        self.scan()
            .dfa
            .get_or_init(|| build_dfa(self))
            .as_ref()
            .map(|d| d.accepting.len())
    }
}

/// BFS over consuming transitions (with zero-closures between letters):
/// the minimum number of bytes on any path from the initial closure to an
/// accepting state. `None` iff no accepting state is reachable at all.
fn min_accepted_len(compiled: &CompiledVsa) -> Option<usize> {
    let states = compiled.state_count();
    let mut dist: Vec<Option<usize>> = vec![None; states];
    let mut queue = std::collections::VecDeque::new();
    for q in compiled.zero_closure(compiled.initial()).iter() {
        if dist[q].is_none() {
            dist[q] = Some(0);
            queue.push_back(q);
        }
    }
    let mut best: Option<usize> = None;
    while let Some(q) = queue.pop_front() {
        let d = dist[q].expect("queued states have a distance");
        if compiled.is_accepting(q) {
            best = Some(best.map_or(d, |b| b.min(d)));
            // BFS: the first accepting state found is at minimum distance.
            break;
        }
        for class in 0..compiled.class_count() {
            for &t in compiled.byte_targets(q, class) {
                for r in compiled.zero_closure(t).iter() {
                    if dist[r].is_none() {
                        dist[r] = Some(d + 1);
                        queue.push_back(r);
                    }
                }
            }
        }
    }
    best
}

/// The union of the byte classes of consuming transitions leaving the
/// initial zero-closure — an overapproximation of the first byte of any
/// accepted non-empty document. `None` when every byte is possible.
fn prefix_class(compiled: &CompiledVsa) -> Option<ByteClass> {
    let start = compiled.zero_closure(compiled.initial());
    let mut class = ByteClass::empty();
    for b in 0..=255u8 {
        let c = compiled.class_of(b);
        if start
            .iter()
            .any(|q| !compiled.byte_targets(q, c).is_empty())
        {
            class.insert(b);
        }
    }
    (class.len() < 256).then_some(class)
}

/// Finds byte classes that every accepted document must contain: a class is
/// required iff the automaton restricted to the remaining bytes accepts
/// nothing. Candidates are the compiled byte-class partition (skipping
/// classes no transition consumes). Kept rarest-first, at most
/// [`MAX_FACTORS`].
fn required_factors(compiled: &CompiledVsa) -> Vec<ByteClass> {
    let class_count = compiled.class_count();
    if class_count > 64 {
        return Vec::new();
    }
    // The byte set of each compiled class.
    let mut class_bytes: Vec<ByteClass> = vec![ByteClass::empty(); class_count];
    for b in 0..=255u8 {
        class_bytes[compiled.class_of(b)].insert(b);
    }
    let mut factors: Vec<ByteClass> = Vec::new();
    for (avoid, bytes) in class_bytes.iter().enumerate() {
        // Is any accepting state reachable using only classes != `avoid`?
        let mut reach = compiled.zero_closure(compiled.initial()).clone();
        let mut stack: Vec<usize> = reach.iter().collect();
        let mut alive = reach.intersects(compiled.accepting());
        while let Some(q) = stack.pop() {
            if alive {
                break;
            }
            for class in 0..class_count {
                if class == avoid {
                    continue;
                }
                for &t in compiled.byte_targets(q, class) {
                    for r in compiled.zero_closure(t).iter() {
                        if reach.insert(r) {
                            if compiled.is_accepting(r) {
                                alive = true;
                            }
                            stack.push(r);
                        }
                    }
                }
            }
        }
        if !alive {
            factors.push(*bytes);
        }
    }
    // Collect *all* required classes before ranking: truncating in
    // partition order would keep arbitrary classes, not the rarest, and a
    // rare literal class found late would be dropped.
    factors.sort_by_key(ByteClass::len);
    factors.truncate(MAX_FACTORS);
    factors
}

/// Extracts required *byte strings*: literals every accepted document must
/// contain as a contiguous factor. Seeds are the single-byte required
/// factors plus a singleton anchored-prefix byte; each seed is grown
/// greedily to the left and right with singleton-class bytes, and every
/// candidate is verified exactly by [`is_required_literal`]. Kept longest
/// first (more trigrams — more selective), at most [`MAX_LITERALS`], with
/// substrings of longer literals dropped as redundant.
fn required_literals(
    compiled: &CompiledVsa,
    min_len: usize,
    prefix_class: Option<&ByteClass>,
    factors: &[ByteClass],
) -> Vec<Vec<u8>> {
    if min_len == 0 {
        // The empty document is accepted, so no literal can be required.
        return Vec::new();
    }
    let class_count = compiled.class_count();
    if class_count > 64 || compiled.state_count() > LITERAL_STATE_BUDGET {
        return Vec::new();
    }
    // Bytes alone in their compiled class: the only bytes the class
    // partition can pin to an exact literal position.
    let mut class_size = vec![0u16; class_count];
    for b in 0..=255u8 {
        class_size[compiled.class_of(b)] += 1;
    }
    let singleton_bytes: Vec<u8> = (0..=255u8)
        .filter(|&b| class_size[compiled.class_of(b)] == 1)
        .collect();

    // Seeds: single-byte required factors (required by construction) and a
    // singleton anchored-prefix byte (every accepted document is non-empty
    // here, so its verified first byte is a factor).
    let mut seeds: Vec<u8> = factors
        .iter()
        .filter(|f| f.len() == 1)
        .filter_map(|f| f.iter().next())
        .collect();
    if let Some(prefix) = prefix_class {
        if prefix.len() == 1 {
            seeds.extend(prefix.iter().next());
        }
    }
    seeds.sort_unstable();
    seeds.dedup();

    let mut budget = LITERAL_VERIFY_BUDGET;
    let mut literals: Vec<Vec<u8>> = Vec::new();
    for seed in seeds {
        let mut verify = |lit: &[u8]| {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            is_required_literal(compiled, lit)
        };
        if !verify(&[seed]) {
            continue;
        }
        let mut lit = vec![seed];
        // Grow right, then left; each step keeps the literal verified.
        loop {
            if lit.len() >= MAX_LITERAL_LEN {
                break;
            }
            let mut grown = false;
            for &b in &singleton_bytes {
                lit.push(b);
                if verify(&lit) {
                    grown = true;
                    break;
                }
                lit.pop();
            }
            if !grown {
                break;
            }
        }
        loop {
            if lit.len() >= MAX_LITERAL_LEN {
                break;
            }
            let mut grown = false;
            for &b in &singleton_bytes {
                lit.insert(0, b);
                if verify(&lit) {
                    grown = true;
                    break;
                }
                lit.remove(0);
            }
            if !grown {
                break;
            }
        }
        literals.push(lit);
    }

    // Longest first; drop duplicates and substrings of longer literals.
    literals.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let mut kept: Vec<Vec<u8>> = Vec::new();
    for lit in literals {
        let subsumed = kept
            .iter()
            .any(|k| k.windows(lit.len()).any(|w| w == lit.as_slice()));
        if !subsumed {
            kept.push(lit);
        }
    }
    kept.truncate(MAX_LITERALS);
    kept
}

/// Whether every accepted document contains `needle` as a factor: explores
/// the product of the NFA (zero-closures as ε — variable operations read no
/// input) with the KMP prefix automaton of `needle`, pruning any path on
/// which the needle completes. The literal is required iff no accepting
/// state is reachable on a needle-avoiding path.
fn is_required_literal(compiled: &CompiledVsa, needle: &[u8]) -> bool {
    let m = needle.len();
    debug_assert!(m > 0);
    let fail = kmp_failure(needle);
    let kmp_next = |mut k: usize, b: u8| -> usize {
        while k > 0 && needle[k] != b {
            k = fail[k - 1];
        }
        if needle[k] == b {
            k + 1
        } else {
            0
        }
    };

    let states = compiled.state_count();
    let mut visited = vec![false; states * m];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for q in compiled.zero_closure(compiled.initial()).iter() {
        if compiled.is_accepting(q) {
            // A document can end here with the needle unmatched.
            return false;
        }
        if !visited[q * m] {
            visited[q * m] = true;
            stack.push((q, 0));
        }
    }
    while let Some((q, k)) = stack.pop() {
        // Bytes sharing a class can move the KMP automaton differently, so
        // each byte is stepped individually (the visited set dedups the
        // resulting product states).
        for b in 0..=255u8 {
            let targets = compiled.byte_targets(q, compiled.class_of(b));
            if targets.is_empty() {
                continue;
            }
            let k2 = kmp_next(k, b);
            if k2 == m {
                continue; // needle matched: not an avoiding path
            }
            for &t in targets {
                for r in compiled.zero_closure(t).iter() {
                    if compiled.is_accepting(r) {
                        return false;
                    }
                    if !visited[r * m + k2] {
                        visited[r * m + k2] = true;
                        stack.push((r, k2));
                    }
                }
            }
        }
    }
    true
}

/// The KMP failure function of `needle`: `fail[i]` is the length of the
/// longest proper border of `needle[..=i]`.
fn kmp_failure(needle: &[u8]) -> Vec<usize> {
    let mut fail = vec![0usize; needle.len()];
    let mut k = 0;
    for i in 1..needle.len() {
        while k > 0 && needle[i] != needle[k] {
            k = fail[k - 1];
        }
        if needle[i] == needle[k] {
            k += 1;
        }
        fail[i] = k;
    }
    fail
}

/// Bounded subset construction over the compiled byte classes, variable
/// operations as ε (exact for boolean acceptance). `None` past the budget.
fn build_dfa(compiled: &CompiledVsa) -> Option<MatchDfa> {
    let class_count = compiled.class_count().max(1);
    let states = compiled.state_count();
    let start = compiled.zero_closure(compiled.initial()).clone();

    let mut index: FxHashMap<StateSet, u32> = FxHashMap::default();
    let mut subsets: Vec<StateSet> = vec![start.clone()];
    let mut accepting: Vec<bool> = vec![start.intersects(compiled.accepting())];
    let mut table: Vec<u32> = Vec::new();
    index.insert(start, 0);

    let mut next_subset = 0usize;
    while next_subset < subsets.len() {
        let from = next_subset;
        next_subset += 1;
        let mut row = vec![DEAD; class_count];
        for (class, slot) in row.iter_mut().enumerate() {
            let mut next = StateSet::new(states);
            for q in subsets[from].iter() {
                for &t in compiled.byte_targets(q, class) {
                    next.insert(t);
                }
            }
            if next.is_empty() {
                continue;
            }
            let mut closed = StateSet::new(states);
            for t in next.iter() {
                closed.union_with(compiled.zero_closure(t));
            }
            let id = match index.get(&closed) {
                Some(&id) => id,
                None => {
                    if (subsets.len() + 1) * class_count > DFA_CELL_BUDGET {
                        return None;
                    }
                    let id = subsets.len() as u32;
                    accepting.push(closed.intersects(compiled.accepting()));
                    subsets.push(closed.clone());
                    index.insert(closed, id);
                    id
                }
            };
            *slot = id;
        }
        table.extend_from_slice(&row);
    }

    // Rows are built lazily above, so pad any states discovered after the
    // last processed row (cannot happen — the worklist drains fully — but
    // keep the invariant explicit).
    debug_assert_eq!(table.len(), subsets.len() * class_count);

    let accel = (0..subsets.len())
        .map(|q| {
            let row = &table[q * class_count..(q + 1) * class_count];
            let self_loops = row.iter().filter(|&&t| t == q as u32).count();
            if self_loops == 0 {
                return Accel::None;
            }
            if accepting[q] && self_loops == class_count {
                return Accel::AcceptSink;
            }
            // Stop bytes: those that leave the state.
            let mut stop = ByteClass::empty();
            for b in 0..=255u8 {
                if row[compiled.class_of(b)] != q as u32 {
                    stop.insert(b);
                }
            }
            match stop.len() {
                0 => Accel::None, // non-accepting total self-loop: dead in
                // practice (can never leave), plain stepping is fine.
                1 => Accel::SkipToByte(stop.iter().next().expect("one stop byte")),
                2..=64 => Accel::SkipToClass(stop),
                _ => Accel::None,
            }
        })
        .collect();

    Some(MatchDfa {
        class_count,
        table,
        accepting,
        accel,
    })
}

/// Runs the boolean DFA over the document bytes.
fn dfa_scan(compiled: &CompiledVsa, dfa: &MatchDfa, bytes: &[u8]) -> bool {
    let cc = dfa.class_count;
    let mut q = 0usize;
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        match &dfa.accel[q] {
            Accel::AcceptSink => return true,
            Accel::SkipToByte(stop) => match bytes[i..].iter().position(|&b| b == *stop) {
                Some(off) => i += off,
                None => return dfa.accepting[q],
            },
            Accel::SkipToClass(stop) => match bytes[i..].iter().position(|&b| stop.contains(b)) {
                Some(off) => i += off,
                None => return dfa.accepting[q],
            },
            Accel::None => {}
        }
        let t = dfa.table[q * cc + compiled.class_of(bytes[i])];
        if t == DEAD {
            return false;
        }
        q = t as usize;
        i += 1;
    }
    dfa.accepting[q]
}

/// NFA frontier stepping with zero-closures (the budget-exhaustion
/// fallback): exact boolean acceptance, early exit on an empty frontier.
fn nfa_scan(compiled: &CompiledVsa, bytes: &[u8]) -> bool {
    let states = compiled.state_count();
    let mut current = compiled.zero_closure(compiled.initial()).clone();
    let mut next = StateSet::new(states);
    let mut closed = StateSet::new(states);
    for &b in bytes {
        compiled.step_frontier(&current, b, &mut next);
        if next.is_empty() {
            return false;
        }
        closed.clear();
        for t in next.iter() {
            closed.union_with(compiled.zero_closure(t));
        }
        std::mem::swap(&mut current, &mut closed);
    }
    current.intersects(compiled.accepting())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::interpret_nonempty;
    use crate::thompson::compile;
    use spanner_rgx::parse;

    fn compiled(pattern: &str) -> (crate::automaton::Vsa, CompiledVsa) {
        let vsa = compile(&parse(pattern).unwrap());
        let c = CompiledVsa::compile(&vsa);
        (vsa, c)
    }

    #[test]
    fn prescan_agrees_with_the_interpreter() {
        let patterns = [
            ".*{x:a+}.*",
            "{x:[a-z]+}@{y:[a-z]+}",
            "a{x:b*}c",
            "{x:a}|{y:b}",
            ".*abc.*",
            "()",
        ];
        let docs = ["", "a", "abc", "xyz", "foo@bar", "aaabbb", "cab", "b"];
        for pattern in patterns {
            let (vsa, c) = compiled(pattern);
            for text in docs {
                let doc = Document::new(text);
                assert_eq!(
                    c.matches_anywhere(&doc),
                    interpret_nonempty(&vsa, &doc),
                    "{pattern:?} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn min_len_and_prefix_filters_fire() {
        let (_, c) = compiled("abc{x:d+}");
        let plan = c.scan_plan();
        assert_eq!(plan.min_len(), Some(4));
        let prefix = plan.prefix_class().expect("anchored prefix");
        assert!(prefix.contains(b'a') && !prefix.contains(b'b'));
        // Too short and wrong first byte are both skips, not scans.
        assert_eq!(c.prescan(&Document::new("ab")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("xbcdddd")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("abcd")), PreScan::Accept);
    }

    #[test]
    fn required_factors_are_found_and_filter_documents() {
        let (_, c) = compiled(".*{x:a+}@.*");
        let plan = c.scan_plan();
        // '@' must occur in every accepted document; 'a' as well.
        assert!(
            plan.required_factors()
                .iter()
                .any(|f| f.contains(b'@') && f.len() == 1),
            "{:?}",
            plan.required_factors()
        );
        assert_eq!(c.prescan(&Document::new("aaaa")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("aa@x")), PreScan::Accept);
        // Adversarial: factors present but no match — the DFA rejects.
        assert_eq!(c.prescan(&Document::new("@aaa")), PreScan::Reject);
    }

    #[test]
    fn rarest_required_factor_survives_truncation() {
        // Five required classes — four 4-byte ranges and the singleton 'z'.
        // Class ids follow the smallest byte of each class, so 'z' is
        // discovered after all four ranges: truncating to MAX_FACTORS in
        // partition order would drop it; the rarest class must survive.
        let (_, c) = compiled("[a-d][e-h][i-l][m-p]z");
        let factors = c.scan_plan().required_factors();
        assert_eq!(factors.len(), MAX_FACTORS);
        assert!(
            factors.iter().any(|f| f.len() == 1 && f.contains(b'z')),
            "the singleton 'z' class must be kept: {factors:?}"
        );
        // Rarest first: the singleton sorts ahead of the ranges.
        assert_eq!(factors[0].len(), 1);
    }

    #[test]
    fn required_literals_recover_a_needle() {
        let (_, c) = compiled(".*needle.*");
        let literals = c.scan_plan().required_literals();
        assert!(
            literals.iter().any(|l| l == b"needle"),
            "full needle must be extracted: {literals:?}"
        );
        // Subsumption: no literal is a substring of another.
        for (i, a) in literals.iter().enumerate() {
            for (j, b) in literals.iter().enumerate() {
                if i != j {
                    assert!(!b.windows(a.len()).any(|w| w == a.as_slice()));
                }
            }
        }
    }

    #[test]
    fn anchored_prefix_extends_to_a_literal() {
        let (_, c) = compiled("abc{x:d*}");
        let literals = c.scan_plan().required_literals();
        assert!(
            literals.iter().any(|l| l == b"abc"),
            "anchored prefix chain: {literals:?}"
        );
        // 'd' is optional, so no literal may contain it.
        assert!(literals.iter().all(|l| !l.contains(&b'd')), "{literals:?}");
    }

    #[test]
    fn no_literals_without_singleton_classes_or_with_empty_doc() {
        // Multi-byte classes only: nothing can be pinned to exact bytes.
        let (_, c) = compiled("{x:[ab]+}");
        assert!(c.scan_plan().required_literals().is_empty());
        // The empty document is accepted: nothing is required.
        let (_, c) = compiled("{x:a*}");
        assert_eq!(c.scan_plan().min_len(), Some(0));
        assert!(c.scan_plan().required_literals().is_empty());
    }

    #[test]
    fn required_literals_are_sound_on_random_matches() {
        // Every document the automaton accepts must contain every extracted
        // literal — spot-checked against the interpreter.
        let patterns = [".*{x:a+}@.*", "foo{x:.*}bar", ".*key={v:[0-9]}.*"];
        let docs = [
            "a@",
            "foobar",
            "fooxbar",
            "key=7",
            "xxkey=3yy",
            "bar",
            "@a",
            "",
            "foo",
        ];
        for pattern in patterns {
            let (vsa, c) = compiled(pattern);
            let literals = c.scan_plan().required_literals().to_vec();
            for text in docs {
                let doc = Document::new(text);
                if interpret_nonempty(&vsa, &doc) {
                    for lit in &literals {
                        assert!(
                            doc.bytes().windows(lit.len()).any(|w| w == lit.as_slice()),
                            "{pattern:?} on {text:?} must contain {:?}",
                            String::from_utf8_lossy(lit)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_language_is_skipped() {
        let (_, c) = compiled("[]");
        assert_eq!(c.scan_plan().min_len(), None);
        assert_eq!(c.prescan(&Document::new("")), PreScan::Skip);
        assert_eq!(c.prescan(&Document::new("anything")), PreScan::Skip);
    }

    #[test]
    fn dfa_is_built_lazily_and_within_budget() {
        let (_, c) = compiled(".*{x:a+}.*");
        assert_eq!(c.scan_plan().dfa_states(), None, "not built yet");
        assert!(c.matches_anywhere(&Document::new("xxax")));
        let states = c.scan_plan().dfa_states().expect("built now");
        assert!(states.is_some(), "small automaton fits the budget");
        assert_eq!(c.boolean_dfa_states(), states);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_nfa_stepping() {
        // (a|b)* a (a|b)^{n-1} needs ≥ 2^{n-1} DFA states; n = 18 blows the
        // cell budget so the pre-pass must run on the NFA frontier — and
        // still answer exactly.
        let n = 18;
        let suffix = "(a|b)".repeat(n - 1);
        let (vsa, c) = compiled(&format!("(a|b)*a{suffix}"));
        assert_eq!(c.boolean_dfa_states(), None, "budget must be exceeded");
        for text in [
            "a".repeat(n),
            "b".repeat(n),
            format!("bba{}", "b".repeat(n - 1)),
            "ab".repeat(4),
        ] {
            let doc = Document::new(&text);
            assert_eq!(
                c.matches_anywhere(&doc),
                interpret_nonempty(&vsa, &doc),
                "{text:?}"
            );
        }
    }

    #[test]
    fn accept_sink_short_circuits_long_documents() {
        let (_, c) = compiled(".*needle.*");
        let mut text = "x".repeat(10_000);
        text.push_str("needle");
        text.push_str(&"y".repeat(10_000));
        assert!(c.matches_anywhere(&Document::new(text)));
        assert!(!c.matches_anywhere(&Document::new("x".repeat(10_000))));
    }

    #[test]
    fn scan_plan_survives_clone() {
        let (_, c) = compiled(".*{x:a+}.*");
        assert!(c.matches_anywhere(&Document::new("a")));
        let cloned = c.clone();
        assert!(cloned
            .scan_plan()
            .dfa_states()
            .expect("cloned built DFA")
            .is_some());
        assert!(cloned.matches_anywhere(&Document::new("a")));
        assert!(!cloned.matches_anywhere(&Document::new("b")));
    }
}
