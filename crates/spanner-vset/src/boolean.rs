//! Boolean-automaton (NFA) utilities.
//!
//! Boolean spanners (no variables) are plain NFAs. The paper's Section 4
//! observes that compiling the *difference* of two functional VAs into a
//! single VA necessarily blows up exponentially, because already for Boolean
//! spanners it subsumes NFA complementation [Jirásková 2005]. These helpers
//! implement the classical subset construction, complementation and product
//! so that experiment E10 can measure that blow-up and contrast it with the
//! ad-hoc (document-dependent) compilation of Lemma 4.2.

use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{ByteClass, Document, SpannerError, SpannerResult};
use std::collections::{BTreeSet, HashMap};

/// A deterministic finite automaton over the byte alphabet.
///
/// Transitions are stored per state as a list of `(class, target)` pairs with
/// pairwise-disjoint classes; missing bytes go to an implicit dead state.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// `transitions[q]` = disjoint `(class, target)` pairs.
    pub transitions: Vec<Vec<(ByteClass, StateId)>>,
    /// The initial state.
    pub initial: StateId,
    /// Acceptance flags.
    pub accepting: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Runs the DFA on a document; returns whether it accepts.
    pub fn accepts(&self, doc: &Document) -> bool {
        let mut q = Some(self.initial);
        for &b in doc.bytes() {
            q = q.and_then(|q| {
                self.transitions[q]
                    .iter()
                    .find(|(c, _)| c.contains(b))
                    .map(|&(_, t)| t)
            });
            if q.is_none() {
                return false;
            }
        }
        q.map(|q| self.accepting[q]).unwrap_or(false)
    }

    /// Complements the DFA (adds an explicit dead state so that the
    /// transition function is total).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        let dead = out.transitions.len();
        out.transitions.push(Vec::new());
        out.accepting.push(false);
        for q in 0..out.transitions.len() {
            let mut covered = ByteClass::empty();
            for (c, _) in &out.transitions[q] {
                covered = covered.union(c);
            }
            let missing = covered.complement();
            if !missing.is_empty() {
                out.transitions[q].push((missing, dead));
            }
        }
        for flag in &mut out.accepting {
            *flag = !*flag;
        }
        out
    }
}

/// Errors if the automaton mentions variables (Boolean operations apply to
/// Boolean spanners only).
fn require_boolean(a: &Vsa) -> SpannerResult<()> {
    if a.vars().is_empty() {
        Ok(())
    } else {
        Err(SpannerError::requirement(
            "Boolean (variable-free) automaton",
            format!("automaton mentions variables {:?}", a.vars()),
        ))
    }
}

/// Computes the ε-closure of a set of states (variable operations count as ε
/// here — callers must pass Boolean automata).
fn epsilon_closure(a: &Vsa, set: &mut BTreeSet<StateId>) {
    let mut stack: Vec<StateId> = set.iter().copied().collect();
    while let Some(q) = stack.pop() {
        for t in a.transitions_from(q) {
            if matches!(t.label, Label::Epsilon) && set.insert(t.target) {
                stack.push(t.target);
            }
        }
    }
}

/// Determinizes a Boolean automaton via the subset construction.
///
/// `max_states` bounds the output size (the blow-up can be exponential).
pub fn determinize(a: &Vsa, max_states: usize) -> SpannerResult<Dfa> {
    require_boolean(a)?;
    let mut start: BTreeSet<StateId> = BTreeSet::from([a.initial()]);
    epsilon_closure(a, &mut start);

    let mut index: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
    let mut dfa = Dfa {
        transitions: vec![Vec::new()],
        initial: 0,
        accepting: vec![start.iter().any(|&q| a.is_accepting(q))],
    };
    index.insert(start.clone(), 0);
    let mut work = vec![start];

    while let Some(subset) = work.pop() {
        let from = index[&subset];
        // Group outgoing letter transitions by byte. To keep classes coarse,
        // first collect the distinct boundary classes.
        let mut by_byte: HashMap<u8, BTreeSet<StateId>> = HashMap::new();
        for &q in &subset {
            for t in a.transitions_from(q) {
                if let Label::Class(c) = &t.label {
                    for b in c.iter() {
                        by_byte.entry(b).or_default().insert(t.target);
                    }
                }
            }
        }
        // Merge bytes with identical successor sets into classes.
        let mut by_target: HashMap<BTreeSet<StateId>, ByteClass> = HashMap::new();
        for (b, mut targets) in by_byte {
            epsilon_closure(a, &mut targets);
            by_target
                .entry(targets)
                .or_insert_with(ByteClass::empty)
                .insert(b);
        }
        for (targets, class) in by_target {
            let to = match index.get(&targets) {
                Some(&id) => id,
                None => {
                    if dfa.transitions.len() >= max_states {
                        return Err(SpannerError::LimitExceeded {
                            what: "DFA states",
                            limit: max_states,
                            actual: dfa.transitions.len() + 1,
                        });
                    }
                    let id = dfa.transitions.len();
                    dfa.transitions.push(Vec::new());
                    dfa.accepting
                        .push(targets.iter().any(|&q| a.is_accepting(q)));
                    index.insert(targets.clone(), id);
                    work.push(targets);
                    id
                }
            };
            dfa.transitions[from].push((class, to));
        }
    }
    Ok(dfa)
}

/// Whether the Boolean automaton accepts the document (NFA simulation,
/// polynomial time).
pub fn nfa_accepts(a: &Vsa, doc: &Document) -> SpannerResult<bool> {
    require_boolean(a)?;
    let mut current: BTreeSet<StateId> = BTreeSet::from([a.initial()]);
    epsilon_closure(a, &mut current);
    for &b in doc.bytes() {
        let mut next = BTreeSet::new();
        for &q in &current {
            for t in a.transitions_from(q) {
                if let Label::Class(c) = &t.label {
                    if c.contains(b) {
                        next.insert(t.target);
                    }
                }
            }
        }
        epsilon_closure(a, &mut next);
        current = next;
        if current.is_empty() {
            return Ok(false);
        }
    }
    Ok(current.iter().any(|&q| a.is_accepting(q)))
}

/// Compiles the *Boolean difference* `L(a1) \ L(a2)` statically into a DFA:
/// determinize + complement + product. The output can be exponentially larger
/// than the inputs — this is exactly the blow-up that motivates the paper's
/// ad-hoc compilation for the difference operator.
pub fn static_boolean_difference(a1: &Vsa, a2: &Vsa, max_states: usize) -> SpannerResult<Dfa> {
    require_boolean(a1)?;
    let d1 = determinize(a1, max_states)?;
    let d2 = determinize(a2, max_states)?.complement();
    product_dfa(&d1, &d2, max_states)
}

/// The product DFA accepting the intersection of two DFA languages.
pub fn product_dfa(d1: &Dfa, d2: &Dfa, max_states: usize) -> SpannerResult<Dfa> {
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let start = (d1.initial, d2.initial);
    let mut out = Dfa {
        transitions: vec![Vec::new()],
        initial: 0,
        accepting: vec![d1.accepting[d1.initial] && d2.accepting[d2.initial]],
    };
    index.insert(start, 0);
    let mut work = vec![start];
    while let Some((q1, q2)) = work.pop() {
        let from = index[&(q1, q2)];
        for (c1, t1) in &d1.transitions[q1] {
            for (c2, t2) in &d2.transitions[q2] {
                let both = c1.intersect(c2);
                if both.is_empty() {
                    continue;
                }
                let key = (*t1, *t2);
                let to = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        if out.transitions.len() >= max_states {
                            return Err(SpannerError::LimitExceeded {
                                what: "product DFA states",
                                limit: max_states,
                                actual: out.transitions.len() + 1,
                            });
                        }
                        let id = out.transitions.len();
                        out.transitions.push(Vec::new());
                        out.accepting.push(d1.accepting[*t1] && d2.accepting[*t2]);
                        index.insert(key, id);
                        work.push(key);
                        id
                    }
                };
                out.transitions[from].push((both, to));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thompson::compile;
    use spanner_rgx::parse;

    fn nfa(pattern: &str) -> Vsa {
        compile(&parse(pattern).unwrap())
    }

    #[test]
    fn determinize_and_run() {
        let a = nfa("(a|b)*abb");
        let d = determinize(&a, 1000).unwrap();
        for (text, expect) in [("abb", true), ("aabb", true), ("ab", false), ("", false)] {
            assert_eq!(d.accepts(&Document::new(text)), expect, "{text:?}");
            assert_eq!(nfa_accepts(&a, &Document::new(text)).unwrap(), expect);
        }
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = determinize(&nfa("a*"), 100).unwrap();
        let c = d.complement();
        for (text, in_lang) in [("", true), ("aaa", true), ("ab", false)] {
            assert_eq!(d.accepts(&Document::new(text)), in_lang);
            assert_eq!(c.accepts(&Document::new(text)), !in_lang);
        }
    }

    #[test]
    fn static_difference_is_correct() {
        // L1 = (a|b)*, L2 = strings containing "ab"; difference = b*a*.
        let a1 = nfa("(a|b)*");
        let a2 = nfa("(a|b)*ab(a|b)*");
        let diff = static_boolean_difference(&a1, &a2, 10_000).unwrap();
        for (text, expect) in [
            ("", true),
            ("ba", true),
            ("bbaa", true),
            ("ab", false),
            ("bab", false),
        ] {
            assert_eq!(diff.accepts(&Document::new(text)), expect, "{text:?}");
        }
    }

    #[test]
    fn variable_automata_are_rejected() {
        let a = nfa("{x:a}");
        assert!(determinize(&a, 100).is_err());
        assert!(nfa_accepts(&a, &Document::new("a")).is_err());
    }

    #[test]
    fn exponential_blowup_family() {
        // L_n = (a|b)* a (a|b)^{n-1}: the minimal DFA needs ≥ 2^n states.
        let n = 8;
        let suffix = "(a|b)".repeat(n - 1);
        let a = nfa(&format!("(a|b)*a{suffix}"));
        let d = determinize(&a, 1 << 16).unwrap();
        assert!(
            d.state_count() >= 1 << (n - 1),
            "expected ≥ {} states, got {}",
            1 << (n - 1),
            d.state_count()
        );
        // The limit guard triggers when the allowance is too small.
        assert!(matches!(
            determinize(&a, 16),
            Err(SpannerError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn dead_state_handling() {
        let d = determinize(&nfa("ab"), 100).unwrap();
        assert!(!d.accepts(&Document::new("ax")));
        assert!(!d.accepts(&Document::new("abc")));
        assert!(d.accepts(&Document::new("ab")));
    }
}
