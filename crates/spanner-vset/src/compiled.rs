//! The compiled evaluation engine: compile a [`Vsa`] once, evaluate many
//! times on flat data.
//!
//! [`Vsa`] stays the canonical *construction-time* representation — unions,
//! projections, products and trims all operate on it. Evaluation, however,
//! pays for its pointer-chasing generality in every inner loop: scanning
//! heterogeneous transition lists, re-deriving ε-reachability per position,
//! and keeping state sets as sorted `Vec<StateId>`. [`CompiledVsa`] is the
//! document-independent compilation that removes all of that:
//!
//! * **ε-closures** are precomputed per state, both the pure-ε closure and
//!   the *zero closure* (ε and variable operations — everything that
//!   consumes no input);
//! * **letter transitions** are re-indexed through a dense 256-entry
//!   byte-to-class table: the distinct [`ByteClass`](spanner_core::ByteClass) labels of the automaton
//!   partition the byte alphabet into equivalence classes, and each state
//!   stores one flat target list per class;
//! * **variable operations** are split into per-state lists with the
//!   variable resolved to a dense local index (via
//!   [`spanner_core::VarTable`]), so downstream bitset code never touches a
//!   name;
//! * **state sets** are [`StateSet`] bitsets (`u64` blocks) with constant
//!   per-block union/intersection, replacing sorted-vector scans.
//!
//! `spanner-enum`'s match graph and enumerator run entirely on this
//! representation; `spanner-algebra` reuses those, so the whole stack
//! evaluates through the compiled path.

use crate::analysis::is_sequential;
use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{VarTable, Variable};
use std::collections::HashMap;

/// A set of automaton states, stored as a bitset over `u64` blocks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StateSet {
    blocks: Vec<u64>,
}

impl StateSet {
    /// The empty set with capacity for `states` states.
    pub fn new(states: usize) -> Self {
        StateSet {
            blocks: vec![0; states.div_ceil(64)],
        }
    }

    /// Builds a set from an iterator of state ids.
    pub fn from_states<I: IntoIterator<Item = StateId>>(states: usize, iter: I) -> Self {
        let mut s = StateSet::new(states);
        for q in iter {
            s.insert(q);
        }
        s
    }

    /// Inserts a state; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, q: StateId) -> bool {
        let (block, bit) = (q / 64, 1u64 << (q % 64));
        let fresh = self.blocks[block] & bit == 0;
        self.blocks[block] |= bit;
        fresh
    }

    /// Whether the set contains `q`.
    #[inline]
    pub fn contains(&self, q: StateId) -> bool {
        self.blocks[q / 64] & (1u64 << (q % 64)) != 0
    }

    /// Removes every state.
    #[inline]
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of states in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place union (`self ∪= other`). The sets must have equal capacity.
    #[inline]
    pub fn union_with(&mut self, other: &StateSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection (`self ∩= other`).
    #[inline]
    pub fn intersect_with(&mut self, other: &StateSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Whether the two sets share at least one state (no allocation).
    #[inline]
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over the states in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut rest = block;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// The states as a sorted vector.
    pub fn to_vec(&self) -> Vec<StateId> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for StateSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A variable operation in compiled form: dense local variable index plus
/// open/close flag. The local index is the variable's position in the
/// automaton's [`VarTable`] (name order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarOp {
    /// Local variable index (`0 .. vars().len()`).
    pub var: u16,
    /// `false` = `x⊢` (open), `true` = `⊣x` (close).
    pub is_close: bool,
}

/// The compiled, evaluation-ready form of a [`Vsa`].
///
/// Compilation is document-independent: compile once, evaluate on any number
/// of documents. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct CompiledVsa {
    state_count: usize,
    initial: StateId,
    accepting: StateSet,
    vars: VarTable,
    /// ε-only closure of each state (always contains the state itself).
    eps_closure: Vec<StateSet>,
    /// Closure over ε *and* variable operations (= states reachable without
    /// consuming input); always contains the state itself.
    zero_closure: Vec<StateSet>,
    /// Dense byte → byte-class dispatch table.
    class_of: Box<[u16; 256]>,
    class_count: usize,
    /// Flattened `state × class → sorted target list` table.
    byte_step: Vec<Vec<StateId>>,
    /// Per-state variable operations with their targets.
    var_ops: Vec<Vec<(VarOp, StateId)>>,
    /// The states with at least one outgoing variable operation (lets
    /// evaluators skip operation-set exploration wholesale where no
    /// operation can occur — the overwhelmingly common case).
    states_with_var_ops: StateSet,
    /// Whether the source automaton is sequential (checked once at compile
    /// time; enumeration requires it).
    sequential: bool,
    /// The scan fast-path analysis (prefilters + lazy boolean DFA); see
    /// [`crate::scan`].
    scan: crate::scan::ScanPlan,
}

impl CompiledVsa {
    /// Compiles an automaton. `O(states × transitions)` worst case (the
    /// closure computation), linear in practice for sparse automata.
    pub fn compile(vsa: &Vsa) -> CompiledVsa {
        let n = vsa.state_count();
        let vars = VarTable::new(vsa.vars().iter().cloned());

        // --- Byte classes: partition 0..=255 by the distinct Class labels.
        let mut distinct: Vec<spanner_core::ByteClass> = Vec::new();
        for (_, label, _) in vsa.all_transitions() {
            if let Label::Class(c) = label {
                if !distinct.contains(c) {
                    distinct.push(*c);
                }
            }
        }
        let mut class_of = Box::new([0u16; 256]);
        let mut signatures: HashMap<Vec<bool>, u16> = HashMap::new();
        let mut class_reps: Vec<u8> = Vec::new();
        for b in 0..=255u8 {
            let sig: Vec<bool> = distinct.iter().map(|c| c.contains(b)).collect();
            let next_id = signatures.len() as u16;
            let id = *signatures.entry(sig).or_insert_with(|| {
                class_reps.push(b);
                next_id
            });
            class_of[b as usize] = id;
        }
        let class_count = class_reps.len();

        // --- Per-state transition tables.
        let mut byte_step: Vec<Vec<StateId>> = vec![Vec::new(); n * class_count];
        let mut var_ops: Vec<Vec<(VarOp, StateId)>> = vec![Vec::new(); n];
        let mut eps_edges: Vec<Vec<StateId>> = vec![Vec::new(); n];
        let mut zero_edges: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (src, label, tgt) in vsa.all_transitions() {
            match label {
                Label::Epsilon => {
                    eps_edges[src].push(tgt);
                    zero_edges[src].push(tgt);
                }
                Label::Class(c) => {
                    for (cls, &rep) in class_reps.iter().enumerate() {
                        if c.contains(rep) {
                            byte_step[src * class_count + cls].push(tgt);
                        }
                    }
                }
                Label::Open(v) | Label::Close(v) => {
                    let var = vars
                        .index_of(v)
                        .expect("automaton variable registered in its VarTable")
                        as u16;
                    let is_close = matches!(label, Label::Close(_));
                    var_ops[src].push((VarOp { var, is_close }, tgt));
                    zero_edges[src].push(tgt);
                }
            }
        }
        for targets in &mut byte_step {
            targets.sort_unstable();
            targets.dedup();
        }

        let closure = |edges: &[Vec<StateId>]| -> Vec<StateSet> {
            (0..n)
                .map(|q| {
                    let mut set = StateSet::new(n);
                    set.insert(q);
                    let mut stack = vec![q];
                    while let Some(s) = stack.pop() {
                        for &t in &edges[s] {
                            if set.insert(t) {
                                stack.push(t);
                            }
                        }
                    }
                    set
                })
                .collect()
        };
        let eps_closure = closure(&eps_edges);
        let zero_closure = closure(&zero_edges);

        let accepting = StateSet::from_states(n, vsa.states().filter(|&q| vsa.is_accepting(q)));
        let states_with_var_ops =
            StateSet::from_states(n, (0..n).filter(|&q| !var_ops[q].is_empty()));

        let mut out = CompiledVsa {
            state_count: n,
            initial: vsa.initial(),
            accepting,
            vars,
            eps_closure,
            zero_closure,
            class_of,
            class_count,
            byte_step,
            var_ops,
            states_with_var_ops,
            sequential: is_sequential(vsa),
            scan: crate::scan::ScanPlan::placeholder(),
        };
        out.scan = crate::scan::ScanPlan::analyze(&out);
        out
    }

    /// The scan fast-path analysis (internal accessor; the public surface is
    /// [`CompiledVsa::scan_plan`] in [`crate::scan`]).
    #[inline]
    pub(crate) fn scan(&self) -> &crate::scan::ScanPlan {
        &self.scan
    }

    /// Whether the source automaton is sequential (Theorem 2.5's
    /// precondition for polynomial-delay enumeration).
    #[inline]
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The accepting states.
    #[inline]
    pub fn accepting(&self) -> &StateSet {
        &self.accepting
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q)
    }

    /// The automaton's variables, dense-indexed (name order).
    #[inline]
    pub fn var_table(&self) -> &VarTable {
        &self.vars
    }

    /// The variable behind a compiled [`VarOp`] index.
    #[inline]
    pub fn var(&self, index: u16) -> &Variable {
        self.vars.var(index as usize)
    }

    /// Number of byte classes (≤ 256).
    #[inline]
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The byte class of `b`.
    #[inline]
    pub fn class_of(&self, b: u8) -> usize {
        self.class_of[b as usize] as usize
    }

    /// The targets of `q` under any byte of class `class`.
    #[inline]
    pub fn byte_targets(&self, q: StateId, class: usize) -> &[StateId] {
        &self.byte_step[q * self.class_count + class]
    }

    /// The ε-only closure of `q` (contains `q`).
    #[inline]
    pub fn eps_closure(&self, q: StateId) -> &StateSet {
        &self.eps_closure[q]
    }

    /// The closure of `q` over all non-consuming transitions (contains `q`).
    #[inline]
    pub fn zero_closure(&self, q: StateId) -> &StateSet {
        &self.zero_closure[q]
    }

    /// The compiled variable operations leaving `q`.
    #[inline]
    pub fn var_ops(&self, q: StateId) -> &[(VarOp, StateId)] {
        &self.var_ops[q]
    }

    /// The states with at least one outgoing variable operation.
    #[inline]
    pub fn states_with_var_ops(&self) -> &StateSet {
        &self.states_with_var_ops
    }

    /// Whether `q` has an outgoing variable operation.
    #[inline]
    pub fn has_var_ops(&self, q: StateId) -> bool {
        !self.var_ops[q].is_empty()
    }

    /// Whether an accepting state is reachable from `q` without consuming
    /// input.
    #[inline]
    pub fn accepts_without_input(&self, q: StateId) -> bool {
        self.zero_closure[q].intersects(&self.accepting)
    }

    /// Advances a frontier over one input byte: `out` receives every state
    /// reachable from `frontier` by a single consuming transition on `byte`.
    /// (`out` is cleared first; closures are *not* applied.)
    pub fn step_frontier(&self, frontier: &StateSet, byte: u8, out: &mut StateSet) {
        out.clear();
        let class = self.class_of(byte);
        for q in frontier.iter() {
            for &t in self.byte_targets(q, class) {
                out.insert(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{ByteClass, Variable};

    /// The paper's Example 2.3 automaton.
    fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q0 = a.initial();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(q0, Label::Class(ByteClass::any()), q0);
        a.add_transition(q0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(Variable::new("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(q0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn state_set_operations() {
        let mut s = StateSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_vec(), vec![0, 129]);

        let t = StateSet::from_states(130, [64, 129]);
        assert!(s.intersects(&t));
        let mut u = s.clone();
        u.union_with(&t);
        assert_eq!(u.to_vec(), vec![0, 64, 129]);
        u.intersect_with(&t);
        assert_eq!(u.to_vec(), vec![64, 129]);
        u.clear();
        assert!(u.is_empty());
        assert!(!u.intersects(&t));
    }

    #[test]
    fn byte_classes_collapse_the_alphabet() {
        // Only Σ transitions: a single byte class.
        let c = CompiledVsa::compile(&example_2_3());
        assert_eq!(c.class_count(), 1);
        assert_eq!(c.class_of(b'a'), c.class_of(0xff));

        // Distinguishing 'a' from the rest: two classes.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::symbol(b'a'), q1);
        a.add_transition(0, Label::Class(ByteClass::any()), 0);
        a.set_accepting(q1, true);
        let c = CompiledVsa::compile(&a);
        assert_eq!(c.class_count(), 2);
        assert_ne!(c.class_of(b'a'), c.class_of(b'b'));
        assert_eq!(c.class_of(b'b'), c.class_of(b'z'));
        assert_eq!(c.byte_targets(0, c.class_of(b'a')), &[0, 1]);
        assert_eq!(c.byte_targets(0, c.class_of(b'b')), &[0]);
    }

    #[test]
    fn closures_distinguish_eps_from_var_ops() {
        let c = CompiledVsa::compile(&example_2_3());
        // No ε-transitions: ε-closures are singletons.
        for q in 0..3 {
            assert_eq!(c.eps_closure(q).to_vec(), vec![q]);
        }
        // Zero closures follow the variable operations.
        assert_eq!(c.zero_closure(0).to_vec(), vec![0, 1, 2]);
        assert_eq!(c.zero_closure(1).to_vec(), vec![1, 2]);
        assert_eq!(c.zero_closure(2).to_vec(), vec![2]);
        assert!(c.accepts_without_input(0));
        assert!(c.accepts_without_input(1));
    }

    #[test]
    fn var_ops_are_dense_indexed() {
        let c = CompiledVsa::compile(&example_2_3());
        let ops0 = c.var_ops(0);
        assert_eq!(ops0.len(), 1);
        assert_eq!(
            ops0[0].0,
            VarOp {
                var: 0,
                is_close: false
            }
        );
        assert_eq!(ops0[0].1, 1);
        assert_eq!(c.var(0).name(), "x");
        let ops1 = c.var_ops(1);
        assert_eq!(
            ops1[0].0,
            VarOp {
                var: 0,
                is_close: true
            }
        );
    }

    #[test]
    fn frontier_stepping() {
        let c = CompiledVsa::compile(&example_2_3());
        let frontier = StateSet::from_states(3, [0, 1]);
        let mut next = StateSet::new(3);
        c.step_frontier(&frontier, b'a', &mut next);
        assert_eq!(next.to_vec(), vec![0, 1, 2]);
        let only_q2 = StateSet::from_states(3, [2]);
        c.step_frontier(&only_q2, b'a', &mut next);
        assert_eq!(next.to_vec(), vec![2]);
    }
}
