//! Compilation of regex formulas into vset-automata (Thompson construction).
//!
//! The translation treats variable operations like symbols: each occurrence
//! of `x{α}` becomes `x⊢ · α · ⊣x` (Lemma 4.6 / Lemma 3.4 of Freydenberger et
//! al.). It runs in linear time, maps sequential regex formulas to sequential
//! VAs and functional formulas to functional VAs, and — because every symbol
//! and variable operation gets a dedicated target state — preserves the
//! *synchronized* property (Lemma 4.6).

use crate::automaton::{Label, StateId, Vsa};
use spanner_rgx::Rgx;

/// Compiles a regex formula into an equivalent vset-automaton.
///
/// For every regex formula `α` and document `d`, `VαW(d) = VAW(d)` where
/// `A = compile(α)`.
pub fn compile(alpha: &Rgx) -> Vsa {
    let mut a = Vsa::new();
    let start = a.initial();
    let end = build(alpha, &mut a, start);
    a.set_accepting(end, true);
    a
}

/// Adds the sub-automaton for `alpha` starting at `start`; returns its final
/// state.
fn build(alpha: &Rgx, a: &mut Vsa, start: StateId) -> StateId {
    match alpha {
        Rgx::Empty => {
            // A fresh state with no way to reach it from `start`.
            a.add_state()
        }
        Rgx::Epsilon => {
            let end = a.add_state();
            a.add_transition(start, Label::Epsilon, end);
            end
        }
        Rgx::Class(c) => {
            let end = a.add_state();
            a.add_transition(start, Label::Class(*c), end);
            end
        }
        Rgx::Concat(parts) => {
            let mut cur = start;
            for p in parts {
                cur = build(p, a, cur);
            }
            if cur == start {
                let end = a.add_state();
                a.add_transition(start, Label::Epsilon, end);
                end
            } else {
                cur
            }
        }
        Rgx::Union(parts) => {
            let end = a.add_state();
            for p in parts {
                let branch_start = a.add_state();
                a.add_transition(start, Label::Epsilon, branch_start);
                let branch_end = build(p, a, branch_start);
                a.add_transition(branch_end, Label::Epsilon, end);
            }
            end
        }
        Rgx::Star(inner) => {
            let loop_start = a.add_state();
            let end = a.add_state();
            a.add_transition(start, Label::Epsilon, loop_start);
            a.add_transition(start, Label::Epsilon, end);
            let loop_end = build(inner, a, loop_start);
            a.add_transition(loop_end, Label::Epsilon, loop_start);
            a.add_transition(loop_end, Label::Epsilon, end);
            end
        }
        Rgx::Capture(v, inner) => {
            let open_target = a.add_state();
            a.add_transition(start, Label::Open(v.clone()), open_target);
            let inner_end = build(inner, a, open_target);
            let end = a.add_state();
            a.add_transition(inner_end, Label::Close(v.clone()), end);
            end
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_functional, is_sequential, is_synchronized};
    use crate::interpret::interpret;
    use spanner_core::{Document, VarSet};
    use spanner_rgx::{classify, parse, reference_eval};

    /// Compiled automaton and reference evaluation must agree.
    fn assert_agrees(pattern: &str, docs: &[&str]) {
        let alpha = parse(pattern).unwrap();
        let a = compile(&alpha);
        for text in docs {
            let doc = Document::new(*text);
            assert_eq!(
                interpret(&a, &doc),
                reference_eval(&alpha, &doc),
                "mismatch for {pattern:?} on {text:?}"
            );
        }
    }

    #[test]
    fn simple_patterns() {
        assert_agrees("a", &["a", "b", ""]);
        assert_agrees("ab|ba", &["ab", "ba", "aa"]);
        assert_agrees("a*b+", &["b", "aab", "aaa", ""]);
        assert_agrees("()", &["", "a"]);
        assert_agrees("[]", &["", "a"]);
    }

    #[test]
    fn capture_patterns() {
        assert_agrees("{x:a*}b", &["b", "ab", "aab", "a"]);
        assert_agrees(".*{x:a+}.*", &["a", "baab", ""]);
        assert_agrees("({x:a})?{y:b}", &["ab", "b", "a"]);
        assert_agrees("{x:{y:a}b}c", &["abc", "ab"]);
    }

    #[test]
    fn schemaless_union_patterns() {
        assert_agrees("{x:a}|{y:b}", &["a", "b", "c"]);
        assert_agrees("({first:\\l+} )?{last:\\l+}", &["bob smith", "smith"]);
    }

    #[test]
    fn class_preservation() {
        // Sequential regex formulas compile to sequential VAs,
        // functional ones to functional VAs (Lemma 4.6 / Section 2.5).
        let cases = [
            ("{x:a*}b", true),
            ("({x:a})?b", false),
            ("{x:a}|{y:b}", false),
            (".*{x:.}.*{y:.}.*", true),
        ];
        for (pattern, functional) in cases {
            let alpha = parse(pattern).unwrap();
            let a = compile(&alpha);
            assert!(classify::is_sequential(&alpha));
            assert!(is_sequential(&a), "compiled {pattern} not sequential");
            assert_eq!(
                is_functional(&a),
                functional,
                "functionality mismatch for {pattern}"
            );
            assert_eq!(classify::is_functional(&alpha), functional);
        }
    }

    #[test]
    fn synchronization_preservation() {
        // Example 4.5: (x{Σ*} ∨ ε)·y{Σ*} is synchronized for y, not x;
        // the compiled automaton behaves the same (Lemma 4.6).
        let alpha = parse("({x:.*}|()){y:.*}").unwrap();
        let a = compile(&alpha);
        assert!(is_synchronized(&a, &VarSet::from_iter(["y"])));
        assert!(!is_synchronized(&a, &VarSet::from_iter(["x"])));

        // A formula synchronized for all its variables compiles to an
        // automaton synchronized for all of them.
        let alpha = parse("{x:a*}(b|c)*{y:\\d+}").unwrap();
        assert!(classify::is_synchronized_for(&alpha, &alpha.vars()));
        let a = compile(&alpha);
        assert!(is_synchronized(&a, a.vars()));
    }

    #[test]
    fn empty_formula_compiles_to_empty_language() {
        let a = compile(&Rgx::Empty);
        assert!(interpret(&a, &Document::new("")).is_empty());
        assert!(interpret(&a, &Document::new("a")).is_empty());
    }

    #[test]
    fn vars_are_preserved() {
        let alpha = parse("{x:a}{y:b}|{x:ab}").unwrap();
        let a = compile(&alpha);
        assert_eq!(a.vars(), &VarSet::from_iter(["x", "y"]));
    }

    #[test]
    fn linear_size() {
        // The Thompson construction is linear: states ≤ 2 * size(α) + 2.
        for pattern in ["a*b|c{x:d+}", ".*{a:\\w+}@{b:\\w+}.*", "((ab)*|c)+{z:.?}"] {
            let alpha = parse(pattern).unwrap();
            let a = compile(&alpha);
            assert!(
                a.state_count() <= 2 * alpha.size() + 2,
                "{} states for size {}",
                a.state_count(),
                alpha.size()
            );
        }
    }
}
