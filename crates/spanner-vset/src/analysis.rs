//! Static analyses of vset-automata: validity, sequentiality, functionality,
//! and the variable-configuration functions of Section 3.1.

use crate::automaton::{Label, StateId, Vsa};
use spanner_core::{VarSet, Variable};

/// The status of a single variable along a run prefix.
///
/// `Bad` is an error status reached by an invalid prefix (double open, close
/// without open, ...). The paper's extended variable configuration
/// `c̃_q(x) ∈ {u, o, c, d}` is recovered from the *set* of statuses reachable
/// at a state (`d` = both `Unseen` and `Closed` reachable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarStatus {
    /// The variable has not been opened yet (`u` / "unseen", `w` / "wait").
    Unseen,
    /// The variable is currently open (`o`).
    Open,
    /// The variable has been opened and closed (`c`).
    Closed,
    /// The prefix is invalid for this variable.
    Bad,
}

impl VarStatus {
    /// Applies a variable operation to the status.
    pub fn apply(self, is_open: bool) -> VarStatus {
        use VarStatus::*;
        match (self, is_open) {
            (Unseen, true) => Open,
            (Open, false) => Closed,
            (Bad, _) => Bad,
            _ => Bad,
        }
    }
}

/// The extended variable configuration of a state for one variable
/// (Section 3.1), generalized to arbitrary automata by reporting the whole
/// set of reachable statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusSet {
    /// `Unseen` reachable at the state.
    pub unseen: bool,
    /// `Open` reachable at the state.
    pub open: bool,
    /// `Closed` reachable at the state.
    pub closed: bool,
    /// An invalid prefix reaches the state.
    pub bad: bool,
}

impl StatusSet {
    fn empty() -> Self {
        StatusSet {
            unseen: false,
            open: false,
            closed: false,
            bad: false,
        }
    }

    fn set(&mut self, s: VarStatus) -> bool {
        let slot = match s {
            VarStatus::Unseen => &mut self.unseen,
            VarStatus::Open => &mut self.open,
            VarStatus::Closed => &mut self.closed,
            VarStatus::Bad => &mut self.bad,
        };
        let changed = !*slot;
        *slot = true;
        changed
    }

    /// The paper's `c̃_q(x)` for sequential automata: `d` when both unseen and
    /// closed prefixes reach the state. Returns `None` if the state exhibits a
    /// combination outside `{u, o, c, d}` (possible only for non-sequential or
    /// untrimmed automata).
    pub fn extended_config(&self) -> Option<ExtendedConfig> {
        match (self.unseen, self.open, self.closed, self.bad) {
            (true, false, false, false) => Some(ExtendedConfig::Unseen),
            (false, true, false, false) => Some(ExtendedConfig::Open),
            (false, false, true, false) => Some(ExtendedConfig::Closed),
            (true, false, true, false) => Some(ExtendedConfig::Done),
            _ => None,
        }
    }
}

/// The four-valued extended variable configuration `{u, o, c, d}` of
/// Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtendedConfig {
    /// `u`: no run to this state has opened the variable.
    Unseen,
    /// `o`: every run to this state has the variable open.
    Open,
    /// `c`: every run to this state has closed the variable.
    Closed,
    /// `d` ("done"): some runs closed it and some never opened it.
    Done,
}

/// Computes, for one variable, the set of statuses reachable at every state
/// by runs starting in the initial state.
pub fn reachable_statuses(a: &Vsa, x: &Variable) -> Vec<StatusSet> {
    let n = a.state_count();
    let mut sets = vec![StatusSet::empty(); n];
    let mut work: Vec<(StateId, VarStatus)> = Vec::new();
    sets[a.initial()].set(VarStatus::Unseen);
    work.push((a.initial(), VarStatus::Unseen));
    while let Some((q, status)) = work.pop() {
        for t in a.transitions_from(q) {
            let next = match &t.label {
                Label::Open(v) if v == x => status.apply(true),
                Label::Close(v) if v == x => status.apply(false),
                _ => status,
            };
            if sets[t.target].set(next) {
                work.push((t.target, next));
            }
        }
    }
    sets
}

/// Whether the automaton is *sequential*: every accepting run is valid, i.e.
/// on every accepting run each variable is opened at most once, closed at
/// most once, only after being opened, and not left open at acceptance
/// (Section 2.3). Checked per variable in polynomial time.
pub fn is_sequential(a: &Vsa) -> bool {
    a.vars().iter().all(|x| is_sequential_for(a, x))
}

/// Sequentiality restricted to one variable.
pub fn is_sequential_for(a: &Vsa, x: &Variable) -> bool {
    let sets = reachable_statuses(a, x);
    a.states().filter(|&q| a.is_accepting(q)).all(|q| {
        let s = sets[q];
        // No invalid prefix may reach an accepting state, and no accepting
        // run may leave the variable open.
        !s.bad && !s.open
    })
}

/// Whether the automaton is *functional*: sequential, and every accepting run
/// opens and closes every variable of `Vars(A)` (Section 2.3).
pub fn is_functional(a: &Vsa) -> bool {
    a.vars().iter().all(|x| {
        let sets = reachable_statuses(a, x);
        a.states().filter(|&q| a.is_accepting(q)).all(|q| {
            let s = sets[q];
            !s.bad && !s.open && !s.unseen
        })
    })
}

/// Whether the automaton is functional when attention is restricted to the
/// variables in `vars` (used when an automaton is treated "as a functional VA
/// over the common variables", Lemma 3.8).
pub fn is_functional_for(a: &Vsa, vars: &VarSet) -> bool {
    vars.iter().all(|x| {
        let sets = reachable_statuses(a, x);
        a.states().filter(|&q| a.is_accepting(q)).all(|q| {
            let s = sets[q];
            !s.bad && !s.open && !s.unseen
        })
    })
}

/// Whether every accepting run *can avoid* using the variable — i.e. whether
/// there exists an accepting run that never operates on `x`.
pub fn can_avoid(a: &Vsa, x: &Variable) -> bool {
    let sets = reachable_statuses(a, x);
    a.states()
        .filter(|&q| a.is_accepting(q))
        .any(|q| sets[q].unseen)
}

/// Whether some valid accepting run uses (opens and closes) the variable.
pub fn can_use(a: &Vsa, x: &Variable) -> bool {
    let sets = reachable_statuses(a, x);
    a.states()
        .filter(|&q| a.is_accepting(q))
        .any(|q| sets[q].closed)
}

/// Whether every accepting run of a **sequential** automaton uses the
/// variable (the automaton is "functional for x").
pub fn must_use(a: &Vsa, x: &Variable) -> bool {
    let sets = reachable_statuses(a, x);
    a.states()
        .filter(|&q| a.is_accepting(q))
        .all(|q| !sets[q].unseen && !sets[q].open && !sets[q].bad)
}

/// Whether the automaton is *semi-functional* for `x` (Section 3.1): the
/// extended configuration of every state is in `{u, o, c}` — never `d` or a
/// mixture.
pub fn is_semi_functional_for(a: &Vsa, x: &Variable) -> bool {
    // Only states that can appear on an accepting run matter; trim first.
    let trimmed = a.trim();
    let sets = reachable_statuses(&trimmed, x);
    trimmed.states().all(|q| {
        matches!(
            sets[q].extended_config(),
            Some(ExtendedConfig::Unseen)
                | Some(ExtendedConfig::Open)
                | Some(ExtendedConfig::Closed)
        )
    })
}

/// Whether the automaton is semi-functional for every variable in `vars`.
pub fn is_semi_functional(a: &Vsa, vars: &VarSet) -> bool {
    vars.iter().all(|x| is_semi_functional_for(a, x))
}

/// Whether the automaton is *synchronized* for `x` (Section 4.2):
/// `x⊢` and `⊣x` each have a unique target state, and either all accepting
/// runs operate on `x` or none does.
pub fn is_synchronized_for(a: &Vsa, x: &Variable) -> bool {
    let mut open_targets = std::collections::BTreeSet::new();
    let mut close_targets = std::collections::BTreeSet::new();
    for (_, label, tgt) in a.all_transitions() {
        match label {
            Label::Open(v) if v == x => {
                open_targets.insert(tgt);
            }
            Label::Close(v) if v == x => {
                close_targets.insert(tgt);
            }
            _ => {}
        }
    }
    if open_targets.len() > 1 || close_targets.len() > 1 {
        return false;
    }
    // All accepting runs operate on x, or none does. Work on the trimmed
    // automaton so that only useful states are considered.
    let trimmed = a.trim();
    if !trimmed.vars().contains(x) {
        return true; // no accepting run operates on x
    }
    let sets = reachable_statuses(&trimmed, x);
    let accepting: Vec<StateId> = trimmed.accepting_states();
    let any_uses = accepting
        .iter()
        .any(|&q| sets[q].closed || sets[q].open || sets[q].bad);
    let any_avoids = accepting.iter().any(|&q| sets[q].unseen);
    !(any_uses && any_avoids)
}

/// Whether the automaton is synchronized for every variable in `vars`.
pub fn is_synchronized(a: &Vsa, vars: &VarSet) -> bool {
    vars.iter().all(|x| is_synchronized_for(a, x))
}

/// Returns, for each state, the extended variable configuration for `x`
/// (requires the automaton to be trimmed and sequential so that the
/// configuration is well defined; returns `None` entries otherwise).
pub fn extended_configs(a: &Vsa, x: &Variable) -> Vec<Option<ExtendedConfig>> {
    reachable_statuses(a, x)
        .into_iter()
        .map(|s| s.extended_config())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::ByteClass;

    fn v(x: &str) -> Variable {
        Variable::new(x)
    }

    /// The sequential (but not functional) automaton of Example 2.3.
    fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(0, Label::Class(ByteClass::any()), 0);
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(v("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    /// The functional variant (without the q0 → q2 shortcut).
    fn example_2_3_functional() -> Vsa {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(0, Label::Class(ByteClass::any()), 0);
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(v("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn sequential_and_functional_classification() {
        let a = example_2_3();
        assert!(is_sequential(&a));
        assert!(!is_functional(&a));
        let b = example_2_3_functional();
        assert!(is_sequential(&b));
        assert!(is_functional(&b));
    }

    #[test]
    fn non_sequential_automata_are_detected() {
        // Opens x twice on an accepting run.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        let q3 = a.add_state();
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Open(v("x")), q2);
        a.add_transition(q2, Label::Close(v("x")), q3);
        a.set_accepting(q3, true);
        assert!(!is_sequential(&a));

        // Leaves x open at acceptance.
        let mut b = Vsa::new();
        let q1 = b.add_state();
        b.add_transition(0, Label::Open(v("x")), q1);
        b.set_accepting(q1, true);
        assert!(!is_sequential(&b));

        // Closes x without opening it.
        let mut c = Vsa::new();
        let q1 = c.add_state();
        c.add_transition(0, Label::Close(v("x")), q1);
        c.set_accepting(q1, true);
        assert!(!is_sequential(&c));
    }

    #[test]
    fn example_3_4_extended_configuration_is_done() {
        // In Example 2.3 / 3.4 the accepting state q2 has configuration d:
        // one run closes x, another never opens it.
        let a = example_2_3();
        let sets = reachable_statuses(&a, &v("x"));
        assert_eq!(sets[2].extended_config(), Some(ExtendedConfig::Done));
        assert_eq!(sets[0].extended_config(), Some(ExtendedConfig::Unseen));
        assert_eq!(sets[1].extended_config(), Some(ExtendedConfig::Open));
        assert!(!is_semi_functional_for(&a, &v("x")));
        // The functional variant is semi-functional for x.
        assert!(is_semi_functional_for(&example_2_3_functional(), &v("x")));
    }

    #[test]
    fn usage_predicates() {
        let a = example_2_3();
        assert!(can_use(&a, &v("x")));
        assert!(can_avoid(&a, &v("x")));
        assert!(!must_use(&a, &v("x")));
        let b = example_2_3_functional();
        assert!(must_use(&b, &v("x")));
        assert!(!can_avoid(&b, &v("x")));
    }

    #[test]
    fn synchronized_checks_unique_targets_and_usage() {
        // Example 4.5's automaton for (x{Σ*} ∨ ε)·y{Σ*}: synchronized for y,
        // not for x (x may be skipped while some runs use it).
        let mut a = Vsa::new();
        let q1 = a.add_state(); // after x⊢
        let q2 = a.add_state(); // after ⊣x
        let q3 = a.add_state(); // after y⊢
        let q4 = a.add_state(); // after ⊣y (accepting)
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(v("x")), q2);
        a.add_transition(0, Label::Epsilon, q2);
        a.add_transition(q2, Label::Open(v("y")), q3);
        a.add_transition(q3, Label::Class(ByteClass::any()), q3);
        a.add_transition(q3, Label::Close(v("y")), q4);
        a.set_accepting(q4, true);
        assert!(is_synchronized_for(&a, &v("y")));
        assert!(!is_synchronized_for(&a, &v("x")));
        assert!(is_synchronized(&a, &VarSet::from_iter(["y"])));
        assert!(!is_synchronized(&a, &VarSet::from_iter(["x", "y"])));

        // A variable not mentioned at all is trivially synchronized.
        assert!(is_synchronized_for(&a, &v("unused")));
    }

    #[test]
    fn synchronized_rejects_multiple_targets() {
        // Two distinct target states for x⊢.
        let mut a = Vsa::new();
        let q1 = a.add_state();
        let q2 = a.add_state();
        let q3 = a.add_state();
        a.add_transition(0, Label::Open(v("x")), q1);
        a.add_transition(0, Label::Open(v("x")), q2);
        a.add_transition(q1, Label::Close(v("x")), q3);
        a.add_transition(q2, Label::Close(v("x")), q3);
        a.set_accepting(q3, true);
        assert!(!is_synchronized_for(&a, &v("x")));
    }

    #[test]
    fn functional_for_subset() {
        let a = example_2_3();
        // x is not always used, so A is not functional for {x} ...
        assert!(!is_functional_for(&a, &VarSet::from_iter(["x"])));
        // ... but it is (vacuously) functional for the empty set.
        assert!(is_functional_for(&a, &VarSet::new()));
    }
}
