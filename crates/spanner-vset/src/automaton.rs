//! The vset-automaton representation.

use spanner_core::{ByteClass, VarSet, Variable};
use std::fmt;

/// A state identifier within a [`Vsa`].
pub type StateId = usize;

/// A transition label of a vset-automaton.
///
/// The paper's definition has epsilon transitions, letter transitions
/// (a single symbol σ ∈ Σ) and variable transitions `x⊢` / `⊣x`.
/// As in `spanner-rgx`, letters are generalized to byte classes, which is
/// shorthand for a disjunction of single-symbol transitions.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Label {
    /// ε — consumes no input.
    Epsilon,
    /// Reads one input symbol contained in the class.
    Class(ByteClass),
    /// `x⊢` — opens variable `x` at the current position.
    Open(Variable),
    /// `⊣x` — closes variable `x` at the current position.
    Close(Variable),
}

impl Label {
    /// A letter transition for a single symbol.
    pub fn symbol(b: u8) -> Label {
        Label::Class(ByteClass::single(b))
    }

    /// Whether the label consumes an input symbol.
    pub fn consumes_input(&self) -> bool {
        matches!(self, Label::Class(_))
    }

    /// Whether the label is a variable operation, and if so on which variable.
    pub fn variable(&self) -> Option<&Variable> {
        match self {
            Label::Open(v) | Label::Close(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Epsilon => write!(f, "ε"),
            Label::Class(c) => write!(f, "{c:?}"),
            Label::Open(v) => write!(f, "{v}⊢"),
            Label::Close(v) => write!(f, "⊣{v}"),
        }
    }
}

/// A transition `(source, label, target)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Target state.
    pub target: StateId,
    /// Transition label.
    pub label: Label,
}

/// A vset-automaton (VA): a nondeterministic finite automaton whose
/// transitions may also open and close capture variables (Section 2.3).
///
/// The automaton has a single initial state and a set of accepting states
/// (the paper notes that allowing multiple accepting states does not change
/// expressiveness, and the constructions of Sections 3 and 4 require it).
#[derive(Clone, PartialEq, Eq)]
pub struct Vsa {
    /// Outgoing transitions, indexed by source state.
    transitions: Vec<Vec<Transition>>,
    initial: StateId,
    accepting: Vec<bool>,
    vars: VarSet,
}

impl Vsa {
    /// Creates an automaton with a single (initial, non-accepting) state and
    /// no transitions.
    pub fn new() -> Self {
        Vsa {
            transitions: vec![Vec::new()],
            initial: 0,
            accepting: vec![false],
            vars: VarSet::new(),
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.accepting.push(false);
        self.transitions.len() - 1
    }

    /// Adds `n` fresh states and returns their ids.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, label: Label, to: StateId) {
        assert!(from < self.transitions.len(), "unknown source state {from}");
        assert!(to < self.transitions.len(), "unknown target state {to}");
        if let Some(v) = label.variable() {
            self.vars.insert(v.clone());
        }
        self.transitions[from].push(Transition { target: to, label });
    }

    /// Marks a state as accepting (or not).
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Changes the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        assert!(state < self.transitions.len());
        self.initial = state;
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is accepting.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.state_count())
            .filter(|&q| self.accepting[q])
            .collect()
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The outgoing transitions of `state`.
    #[inline]
    pub fn transitions_from(&self, state: StateId) -> &[Transition] {
        &self.transitions[state]
    }

    /// Iterates over all transitions as `(source, label, target)`.
    pub fn all_transitions(&self) -> impl Iterator<Item = (StateId, &Label, StateId)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .flat_map(|(src, ts)| ts.iter().map(move |t| (src, &t.label, t.target)))
    }

    /// The set `Vars(A)` of variables mentioned by the automaton.
    #[inline]
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// Iterates over the state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        0..self.state_count()
    }

    /// Replaces every variable operation on a variable *not* in `keep` by an
    /// epsilon transition — the projection operator `π_keep` at the automaton
    /// level. Preserves sequentiality.
    pub fn project(&self, keep: &VarSet) -> Vsa {
        let mut out = self.clone();
        out.vars = self.vars.intersection(keep);
        for ts in &mut out.transitions {
            for t in ts {
                if let Some(v) = t.label.variable() {
                    if !keep.contains(v) {
                        t.label = Label::Epsilon;
                    }
                }
            }
        }
        out
    }

    /// The union of two automata: a fresh initial state with ε-transitions to
    /// both initial states. Preserves sequentiality.
    pub fn union(&self, other: &Vsa) -> Vsa {
        let mut out = Vsa::new();
        let offset_self = Self::copy_into(&mut out, self);
        let offset_other = Self::copy_into(&mut out, other);
        out.add_transition(0, Label::Epsilon, self.initial + offset_self);
        out.add_transition(0, Label::Epsilon, other.initial + offset_other);
        out
    }

    /// Copies all states/transitions of `src` into `dst` and returns the
    /// state-id offset of the copy.
    pub fn copy_into(dst: &mut Vsa, src: &Vsa) -> usize {
        let offset = dst.state_count();
        for _ in 0..src.state_count() {
            dst.add_state();
        }
        for (from, label, to) in src.all_transitions() {
            dst.add_transition(from + offset, label.clone(), to + offset);
        }
        for q in src.states() {
            if src.is_accepting(q) {
                dst.set_accepting(q + offset, true);
            }
        }
        offset
    }

    /// Removes states that are not reachable from the initial state or from
    /// which no accepting state is reachable. Returns the trimmed automaton
    /// (state ids are renumbered). If the language is empty the result has a
    /// single non-accepting initial state.
    pub fn trim(&self) -> Vsa {
        match self.keep_mask() {
            None => Vsa::new(),
            Some(keep) if keep.iter().all(|&k| k) => self.clone(),
            Some(keep) => self.rebuild_keeping(&keep),
        }
    }

    /// By-value [`Vsa::trim`]: when every state is useful (constructions
    /// that prune dead states at generation time, like the join product,
    /// usually end up here) the automaton is returned as-is, with no copy.
    pub fn trimmed(self) -> Vsa {
        match self.keep_mask() {
            None => Vsa::new(),
            Some(keep) if keep.iter().all(|&k| k) => self,
            Some(keep) => self.rebuild_keeping(&keep),
        }
    }

    /// The mask of useful (reachable and co-reachable) states, or `None` if
    /// the initial state is useless (empty language).
    fn keep_mask(&self) -> Option<Vec<bool>> {
        let n = self.state_count();
        // Forward reachability.
        let mut fwd = vec![false; n];
        let mut stack = vec![self.initial];
        fwd[self.initial] = true;
        while let Some(q) = stack.pop() {
            for t in &self.transitions[q] {
                if !fwd[t.target] {
                    fwd[t.target] = true;
                    stack.push(t.target);
                }
            }
        }
        // Backward reachability from accepting states, over a flat (CSR)
        // reverse adjacency — one allocation instead of one vector per
        // state, which matters for the large products the join emits.
        let mut offsets = vec![0usize; n + 1];
        for (_, _, tgt) in self.all_transitions() {
            offsets[tgt + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut reverse = vec![0 as StateId; offsets[n]];
        let mut cursor = offsets.clone();
        for (src, _, tgt) in self.all_transitions() {
            reverse[cursor[tgt]] = src;
            cursor[tgt] += 1;
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<StateId> = (0..n).filter(|&q| self.accepting[q]).collect();
        for &q in &stack {
            bwd[q] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &reverse[offsets[q]..offsets[q + 1]] {
                if !bwd[p] {
                    bwd[p] = true;
                    stack.push(p);
                }
            }
        }
        let keep: Vec<bool> = (0..n).map(|q| fwd[q] && bwd[q]).collect();
        if !keep[self.initial] {
            // Empty language.
            return None;
        }
        Some(keep)
    }

    /// Rebuilds the automaton over the states selected by `keep`, bypassing
    /// the per-transition bookkeeping of [`Vsa::add_transition`] (the keep
    /// mask already validated the states, and the variable set is rebuilt in
    /// one pass).
    fn rebuild_keeping(&self, keep: &[bool]) -> Vsa {
        let n = self.state_count();
        let mut remap = vec![usize::MAX; n];
        remap[self.initial] = 0;
        let mut next = 1usize;
        for q in 0..n {
            if keep[q] && remap[q] == usize::MAX {
                remap[q] = next;
                next += 1;
            }
        }
        let mut transitions: Vec<Vec<Transition>> = vec![Vec::new(); next];
        let mut accepting = vec![false; next];
        let mut vars = VarSet::new();
        for q in 0..n {
            if !keep[q] {
                continue;
            }
            accepting[remap[q]] = self.accepting[q];
            let kept = &mut transitions[remap[q]];
            kept.reserve(self.transitions[q].len());
            for t in &self.transitions[q] {
                if !keep[t.target] {
                    continue;
                }
                if let Some(v) = t.label.variable() {
                    if !vars.contains(v) {
                        vars.insert(v.clone());
                    }
                }
                kept.push(Transition {
                    target: remap[t.target],
                    label: t.label.clone(),
                });
            }
        }
        Vsa {
            transitions,
            initial: 0,
            accepting,
            vars,
        }
    }

    /// Renders the automaton in Graphviz dot format (for debugging and
    /// documentation).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph vsa {{\n  rankdir=LR;");
        let _ = writeln!(s, "  init [shape=point];");
        for q in self.states() {
            let shape = if self.is_accepting(q) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  q{q} [shape={shape}];");
        }
        let _ = writeln!(s, "  init -> q{};", self.initial);
        for (src, label, tgt) in self.all_transitions() {
            let _ = writeln!(s, "  q{src} -> q{tgt} [label=\"{label:?}\"];");
        }
        s.push_str("}\n");
        s
    }
}

impl Default for Vsa {
    fn default() -> Self {
        Vsa::new()
    }
}

impl fmt::Debug for Vsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vsa({} states, {} transitions, vars {:?})",
            self.state_count(),
            self.transition_count(),
            self.vars
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the sequential VA of the paper's Example 2.3:
    /// `q0 --Σ--> q0`, `q0 --x⊢--> q1`, `q1 --Σ--> q1`, `q1 --⊣x--> q2`,
    /// `q2 --Σ--> q2`, plus `q0 --Σ--> q2`; accepting state `q2`.
    pub(crate) fn example_2_3() -> Vsa {
        let mut a = Vsa::new();
        let q0 = a.initial();
        let q1 = a.add_state();
        let q2 = a.add_state();
        a.add_transition(q0, Label::Class(ByteClass::any()), q0);
        a.add_transition(q0, Label::Open(Variable::new("x")), q1);
        a.add_transition(q1, Label::Class(ByteClass::any()), q1);
        a.add_transition(q1, Label::Close(Variable::new("x")), q2);
        a.add_transition(q2, Label::Class(ByteClass::any()), q2);
        a.add_transition(q0, Label::Class(ByteClass::any()), q2);
        a.set_accepting(q2, true);
        a
    }

    #[test]
    fn construction_and_accessors() {
        let a = example_2_3();
        assert_eq!(a.state_count(), 3);
        assert_eq!(a.transition_count(), 6);
        assert_eq!(a.vars(), &VarSet::from_iter(["x"]));
        assert_eq!(a.accepting_states(), vec![2]);
        assert!(a.is_accepting(2));
        assert!(!a.is_accepting(0));
        assert_eq!(a.transitions_from(0).len(), 3);
    }

    #[test]
    fn projection_replaces_ops_with_epsilon() {
        let a = example_2_3();
        let p = a.project(&VarSet::new());
        assert!(p.vars().is_empty());
        assert_eq!(p.transition_count(), a.transition_count());
        let eps_count = p
            .all_transitions()
            .filter(|(_, l, _)| matches!(l, Label::Epsilon))
            .count();
        assert_eq!(eps_count, 2); // the open and close became ε

        // Projecting onto the full variable set changes nothing.
        let same = a.project(&VarSet::from_iter(["x", "unrelated"]));
        assert_eq!(same.vars(), &VarSet::from_iter(["x"]));
    }

    #[test]
    fn union_has_fresh_initial_state() {
        let a = example_2_3();
        let b = example_2_3();
        let u = a.union(&b);
        assert_eq!(u.state_count(), 1 + 3 + 3);
        assert_eq!(u.transitions_from(u.initial()).len(), 2);
        assert_eq!(u.vars(), &VarSet::from_iter(["x"]));
    }

    #[test]
    fn trim_removes_useless_states() {
        let mut a = example_2_3();
        // Add an unreachable state and a dead-end state.
        let dead = a.add_state();
        a.add_transition(0, Label::Epsilon, dead);
        let _unreachable = a.add_state();
        assert_eq!(a.state_count(), 5);
        let t = a.trim();
        assert_eq!(t.state_count(), 3);
        assert_eq!(t.vars(), &VarSet::from_iter(["x"]));
        assert!(t.states().any(|q| t.is_accepting(q)));
    }

    #[test]
    fn trim_empty_language() {
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::symbol(b'a'), q1);
        // No accepting state at all.
        let t = a.trim();
        assert_eq!(t.state_count(), 1);
        assert!(t.accepting_states().is_empty());
    }

    #[test]
    fn dot_output_mentions_all_states() {
        let a = example_2_3();
        let dot = a.to_dot();
        assert!(dot.contains("q0"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("x⊢"));
    }
}
