//! # document-spanners
//!
//! A from-scratch Rust implementation of the framework of
//! Peterfreund, Freydenberger, Kimelfeld and Kröll,
//! *Complexity Bounds for Relational Algebra over Document Spanners*
//! (PODS 2019): schemaless document spanners represented by regex formulas
//! and vset-automata, polynomial-delay evaluation, fixed-parameter-tractable
//! join compilation, ad-hoc (document-dependent) compilation of the
//! difference operator, RA trees with black-box extractors, and executable
//! versions of the paper's hardness reductions.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `spanner-core` | documents, spans, variables, mappings, materialized algebra |
//! | [`rgx`] | `spanner-rgx` | regex formulas: parser, classification, reference semantics |
//! | [`vset`] | `spanner-vset` | vset-automata: analyses, semi-functional transform, FPT join |
//! | [`enumeration`] | `spanner-enum` | polynomial-delay enumeration (Theorem 2.5) |
//! | [`algebra`] | `spanner-algebra` | difference operator, RA trees, black-box spanners |
//! | [`obs`] | `spanner-obs` | metrics registry, Prometheus exposition, execution traces |
//! | [`reductions`] | `spanner-reductions` | SAT reductions for the lower bounds |
//! | [`workloads`] | `spanner-workloads` | synthetic corpora, extractor library, random spanners |
//! | [`corpus`] | `spanner-corpus` | parallel multi-document evaluation of compiled plans |
//! | [`ql`] | `spanner-ql` | SpannerQL: the declarative query-language front end |
//! | [`store`] | `spanner-store` | persistent trigram-indexed corpus store |
//! | [`serve`] | `spanner-serve` | long-running TCP query daemon with a prepared-query cache |
//!
//! # Quickstart
//!
//! ```
//! use document_spanners::prelude::*;
//!
//! // The paper's running example: extract student info (first name, last
//! // name, optional phone, mail) from the Figure 1 document, then filter out
//! // the UK students with the difference operator (Example 2.4).
//! let doc = document_spanners::workloads::students_figure_1();
//! let info = compile(&document_spanners::workloads::student_info_extractor().unwrap());
//! let uk = compile(&document_spanners::workloads::uk_mail_extractor().unwrap());
//!
//! let kept = difference_product_eval(&info, &uk, &doc, DifferenceOptions::default()).unwrap();
//! assert!(!kept.is_empty());
//! for mapping in kept.iter() {
//!     let mail = mapping.get(&"mail".into()).unwrap();
//!     assert!(!doc.slice(mail).ends_with(".uk"));
//! }
//! ```

pub use spanner_algebra as algebra;
pub use spanner_core as core;
pub use spanner_corpus as corpus;
pub use spanner_enum as enumeration;
pub use spanner_obs as obs;
pub use spanner_ql as ql;
pub use spanner_reductions as reductions;
pub use spanner_rgx as rgx;
pub use spanner_serve as serve;
pub use spanner_store as store;
pub use spanner_vset as vset;
pub use spanner_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use spanner_algebra::{
        difference_adhoc_eval, difference_filter, difference_product_eval, evaluate_ra,
        figure_2_tree, optimize_ra, Atom, CompiledPlan, DictionarySpanner, DifferenceOptions,
        Instantiation, PlanStats, RaOptions, RaTree, RgxSpanner, SentimentSpanner, Spanner,
        TokenEqualitySpanner, TokenizerSpanner, VsaSpanner,
    };
    pub use spanner_core::{Document, Mapping, MappingSet, Span, SpannerError, VarSet, Variable};
    pub use spanner_corpus::{
        split_lines, CorpusEngine, CorpusResult, CorpusStats, DeltaOutcome, QueryView, WorkerPool,
    };
    pub use spanner_enum::{count_mappings, evaluate, evaluate_rgx, is_nonempty, Enumerator};
    pub use spanner_ql::{parse_program, PreparedQuery, QlError};
    pub use spanner_rgx::{parse, reference_eval, Rgx};
    pub use spanner_serve::{Client, QueryCache, ServeOptions, Server};
    pub use spanner_store::{
        fnv1a64, Journal, Mutation, Store, StoreError, StoreQueryOutcome, ViewQueryOutcome,
    };
    pub use spanner_vset::{compile, join, Vsa};
}
