//! `document-spanners` — a small command-line front end.
//!
//! ```text
//! document-spanners extract  <pattern> [file]        enumerate VαW(d)
//! document-spanners count    <pattern> [file]        count the mappings
//! document-spanners classify <pattern>               report the syntactic classes
//! document-spanners diff     <pattern1> <pattern2> [file]
//!                                                    evaluate Vα1 \ α2W(d)
//! document-spanners corpus   <pattern> [file [threads]]
//!                                                    evaluate every line as its
//!                                                    own document, in parallel
//! document-spanners index    <file> <store>          ingest every line of <file>
//!                                                    into a trigram-indexed
//!                                                    segment file
//! document-spanners query    <program> [file]        run a SpannerQL program
//! document-spanners query --trace <program> [file]   … and report the measured
//!                                                    per-operator trace on stderr
//! document-spanners query --corpus <program> [file [threads]]
//!                                                    … over every line, in parallel
//! document-spanners query --store <program> <store> [threads]
//!                                                    … over an indexed store,
//!                                                    pruning through its trigram
//!                                                    posting lists
//! document-spanners query --store --watch <program> <store> [threads]
//!                                                    … then apply one mutation per
//!                                                    stdin line (`append <text>`,
//!                                                    `update <id> <text>`,
//!                                                    `delete <id>`) and re-query
//!                                                    incrementally through the
//!                                                    maintained view
//! document-spanners explain  <program>               show the parsed tree, the
//!                                                    optimized plan, the physical
//!                                                    operators, and the
//!                                                    shared-variable bound
//! document-spanners explain --analyze <program> [file]
//!                                                    … then run the program on the
//!                                                    document and annotate every
//!                                                    operator with measured rows,
//!                                                    time, and fast-path counters
//! document-spanners serve    [addr [threads]]        long-running query daemon
//!                                                    with a prepared-query cache
//! document-spanners serve    --http [addr [threads]] the same daemon behind an
//!                                                    HTTP/1.1 front end (/v1/*,
//!                                                    /metrics, /healthz)
//! document-spanners route    <addr> <backend>...     shard-router front end:
//!                                                    partition the corpus across
//!                                                    N backend daemons, fan
//!                                                    corpus queries out, merge
//!                                                    in corpus order (--http for
//!                                                    the HTTP front end)
//! document-spanners client   <addr> [json-line]      send one request line to a
//!                                                    daemon (stdin when omitted)
//! ```
//!
//! The pattern syntax is the one of `spanner_rgx::parse`; SpannerQL programs
//! use the `spanner_ql` syntax (`let name = /…/; expr;`). When no file is
//! given — or when the file argument is `-` — the document is read from
//! standard input, so a thread count can follow in the pipe shape
//! `tail -f log | document-spanners query --corpus <program> - 4`. The
//! `index` file operand and the `query --store` store operand accept `-`
//! the same way (the store bytes themselves stream from stdin), except
//! under `--watch`, whose stdin is the mutation stream.

use document_spanners::prelude::*;
use spanner_rgx::RgxClass;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage:
  document-spanners extract  <pattern> [file]
  document-spanners count    <pattern> [file]
  document-spanners classify <pattern>
  document-spanners diff     <pattern1> <pattern2> [file]
  document-spanners corpus   <pattern> [file [threads]]
  document-spanners index    <file> <store>
  document-spanners query    <program> [file]
  document-spanners query    --trace <program> [file]
  document-spanners query    --corpus <program> [file [threads]]
  document-spanners query    --store <program> <store> [threads]
  document-spanners query    --store --watch <program> <store> [threads]
  document-spanners explain  <program>
  document-spanners explain  --analyze <program> [file]
  document-spanners serve    [--http] [addr [threads]]
  document-spanners route    [--http] <addr> <backend> [backend ...]
  document-spanners client   <addr> [json-line]

a file or store argument of `-` reads from standard input; `--watch`
applies one mutation per stdin line (`append <text>`, `update <id> <text>`,
`delete <id>`) and re-queries through the maintained view";

/// The default listen address of `serve`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7171";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Checks the number of operands after the command name: between `min` and
/// `max`, rejecting silently-ignored trailing arguments.
fn arity(command: &str, operands: &[String], min: usize, max: usize) -> Result<(), String> {
    if operands.len() < min {
        return Err(format!(
            "`{command}` needs at least {min} argument{}, got {}",
            if min == 1 { "" } else { "s" },
            operands.len()
        ));
    }
    if operands.len() > max {
        return Err(format!(
            "unexpected extra argument `{}` to `{command}` (takes at most {max})",
            operands[max]
        ));
    }
    Ok(())
}

/// Strips a leading `--http` flag (the `serve`/`route` transport switch)
/// from the operand list.
fn strip_http_flag(operands: &[String]) -> (bool, &[String]) {
    match operands.first() {
        Some(flag) if flag == "--http" => (true, &operands[1..]),
        _ => (false, operands),
    }
}

/// Parses the optional worker-count operand (`0` = one worker per CPU).
fn parse_threads(arg: Option<&String>) -> Result<usize, String> {
    match arg {
        None => Ok(0),
        Some(t) => t.parse().map_err(|_| {
            format!("invalid thread count `{t}`: expected a non-negative integer (0 = one per CPU)")
        }),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let operands = &args[1..];
    match command.as_str() {
        "classify" => {
            arity(command, operands, 1, 1)?;
            let alpha = parse(&operands[0]).map_err(|e| e.to_string())?;
            let class = RgxClass::of(&alpha);
            println!("formula      : {alpha}");
            println!("variables    : {:?}", alpha.vars());
            println!("functional   : {}", class.functional);
            println!("sequential   : {}", class.sequential);
            println!("disjunctive functional : {}", class.disjunctive_functional);
            println!("disjunction-free       : {}", class.disjunction_free);
            println!("synchronized (all vars): {}", class.synchronized);
            Ok(())
        }
        "extract" | "count" => {
            arity(command, operands, 1, 2)?;
            let doc = read_document(operands.get(1))?;
            let alpha = parse(&operands[0]).map_err(|e| e.to_string())?;
            let vsa = compile(&alpha);
            let enumerator = Enumerator::new(&vsa, &doc).map_err(|e| e.to_string())?;
            if command == "count" {
                let count = enumerator.count();
                println!("{count}");
            } else {
                for mapping in enumerator {
                    let mapping = mapping.map_err(|e| e.to_string())?;
                    print_mapping(&doc, &mapping);
                }
            }
            Ok(())
        }
        "diff" => {
            arity(command, operands, 2, 3)?;
            let doc = read_document(operands.get(2))?;
            let a1 = compile(&parse(&operands[0]).map_err(|e| e.to_string())?);
            let a2 = compile(&parse(&operands[1]).map_err(|e| e.to_string())?);
            let result = difference_product_eval(&a1, &a2, &doc, DifferenceOptions::default())
                .map_err(|e| e.to_string())?;
            for mapping in result.iter() {
                print_mapping(&doc, mapping);
            }
            Ok(())
        }
        "corpus" => {
            arity(command, operands, 1, 3)?;
            // Validate everything else before the document: `-` reads
            // standard input, which must not be consumed (or blocked on)
            // only to then reject a malformed thread count.
            let threads = parse_threads(operands.get(2))?;
            let alpha = parse(&operands[0]).map_err(|e| e.to_string())?;
            let doc = read_document(operands.get(1))?;
            let docs = split_lines(doc.text());
            let inst = Instantiation::new().with(0, alpha);
            let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default())
                .map_err(|e| e.to_string())?;
            let out = engine
                .evaluate_with_threads(&docs, threads)
                .map_err(|e| e.to_string())?;
            print_corpus_result(&docs, &out);
            Ok(())
        }
        "index" => {
            arity(command, operands, 2, 2)?;
            let doc = read_document(Some(&operands[0]))?;
            let docs = split_lines(doc.text());
            let store = Store::build(docs).map_err(|e| e.to_string())?;
            store
                .save(&operands[1])
                .map_err(|e| format!("{}: {e}", operands[1]))?;
            eprintln!(
                "indexed {} documents ({} bytes) into {}: {} distinct trigrams",
                store.len(),
                store.bytes(),
                operands[1],
                store.trigram_count(),
            );
            Ok(())
        }
        "query" => {
            let mode = operands
                .first()
                .filter(|a| *a == "--corpus" || *a == "--store" || *a == "--trace")
                .map(String::as_str);
            let operands = if mode.is_some() {
                &operands[1..]
            } else {
                operands
            };
            if let Some("--trace") = mode {
                arity("query --trace", operands, 1, 2)?;
                let prepared = prepare_program(&operands[0])?;
                let doc = read_document(operands.get(1))?;
                // The trace goes to stderr even when the query errors —
                // seeing where a LimitExceeded tripped is the point.
                let (result, trace) = prepared.evaluate_traced(&doc);
                eprint!("{}", trace.render());
                let set = result.map_err(|e| e.to_string())?;
                for mapping in set.iter() {
                    print_mapping(&doc, mapping);
                }
                return Ok(());
            }
            if let Some("--store") = mode {
                let watch = operands.first().is_some_and(|a| a == "--watch");
                let operands = if watch { &operands[1..] } else { operands };
                let subcommand = if watch {
                    "query --store --watch"
                } else {
                    "query --store"
                };
                // Program and thread count are validated before anything is
                // read: with a `-` store (or watch mode, whose stdin is the
                // mutation stream) the input must not be consumed first.
                arity(subcommand, operands, 2, 3)?;
                let prepared = prepare_program(&operands[0])?;
                let threads = parse_threads(operands.get(2))?;
                if watch {
                    if operands[1] == "-" {
                        return Err(
                            "`--watch` reads mutations from standard input, so the store \
                             cannot be `-`"
                                .into(),
                        );
                    }
                    let store =
                        Store::load(&operands[1]).map_err(|e| format!("{}: {e}", operands[1]))?;
                    return run_watch(store, &prepared, threads, std::io::stdin().lock());
                }
                let store = match document_source(Some(&operands[1])) {
                    DocSource::Stdin => {
                        Store::load_from(std::io::stdin().lock()).map_err(|e| format!("-: {e}"))?
                    }
                    DocSource::File(path) => {
                        Store::load(path).map_err(|e| format!("{path}: {e}"))?
                    }
                };
                let outcome = store
                    .query(prepared.engine(), threads)
                    .map_err(|e| e.to_string())?;
                print_corpus_result(store.documents(), &outcome.output);
                match outcome.candidates {
                    Some(count) => eprintln!(
                        "index: {count} of {} documents are candidates \
                         ({:.2}% selectivity; literals: {})",
                        store.len(),
                        outcome.selectivity() * 100.0,
                        render_literals(&outcome.literals),
                    ),
                    None => eprintln!(
                        "index: full scan (the plan yields no literal of at least \
                         {} bytes)",
                        document_spanners::store::TRIGRAM_LEN
                    ),
                }
                return Ok(());
            }
            let corpus_mode = mode.is_some();
            if corpus_mode {
                arity("query --corpus", operands, 1, 3)?;
            } else {
                arity(command, operands, 1, 2)?;
            }
            // Program and thread count are validated before the document is
            // read: with `-` (stdin) the input must not be consumed first.
            let prepared = prepare_program(&operands[0])?;
            if corpus_mode {
                let threads = parse_threads(operands.get(2))?;
                let doc = read_document(operands.get(1))?;
                let docs = split_lines(doc.text());
                let out = prepared
                    .evaluate_corpus(&docs, threads)
                    .map_err(|e| e.to_string())?;
                print_corpus_result(&docs, &out);
            } else {
                let doc = read_document(operands.get(1))?;
                let stream = prepared.stream(&doc).map_err(|e| e.to_string())?;
                for mapping in stream {
                    let mapping = mapping.map_err(|e| e.to_string())?;
                    print_mapping(&doc, &mapping);
                }
            }
            Ok(())
        }
        "explain" => {
            let analyze = operands.first().is_some_and(|a| a == "--analyze");
            if analyze {
                let operands = &operands[1..];
                arity("explain --analyze", operands, 1, 2)?;
                let prepared = prepare_program(&operands[0])?;
                let doc = read_document(operands.get(1))?;
                print!("{}", prepared.explain_analyze(&doc));
            } else {
                arity(command, operands, 1, 1)?;
                let prepared = prepare_program(&operands[0])?;
                print!("{}", prepared.explain());
            }
            Ok(())
        }
        "serve" => {
            let (http, operands) = strip_http_flag(operands);
            arity(command, operands, 0, 2)?;
            let threads = parse_threads(operands.get(1))?;
            let addr = operands.first().map_or(DEFAULT_SERVE_ADDR, String::as_str);
            let options = spanner_serve::ServeOptions {
                threads,
                http,
                ..spanner_serve::ServeOptions::default()
            };
            let server = spanner_serve::Server::bind(addr, options)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            if http {
                eprintln!(
                    "listening on http://{} (endpoints: /healthz, /metrics, \
                     /v1/prepare, /v1/query, /v1/query_corpus, /v1/explain, \
                     /v1/corpus, /v1/corpus/append, /v1/corpus/update, \
                     /v1/corpus/delete, /v1/stats, /v1/shutdown)",
                    server.local_addr(),
                );
            } else {
                eprintln!(
                    "listening on {} (line-delimited JSON ops: prepare, query, \
                     load_corpus, append_docs, update_doc, delete_docs, \
                     query_corpus, explain, stats, metrics, shutdown)",
                    server.local_addr(),
                );
            }
            server.run().map_err(|e| e.to_string())
        }
        "route" => {
            let (http, operands) = strip_http_flag(operands);
            arity(command, operands, 2, usize::MAX)?;
            let addr = operands[0].as_str();
            let router = spanner_serve::RouterOptions {
                backends: operands[1..].to_vec(),
                ..spanner_serve::RouterOptions::default()
            };
            let options = spanner_serve::ServeOptions {
                http,
                ..spanner_serve::ServeOptions::default()
            };
            let shards = router.backends.len();
            let server = spanner_serve::Server::bind_router(addr, options, router)
                .map_err(|e| format!("cannot start router on {addr}: {e}"))?;
            eprintln!(
                "routing on {}{} across {shards} backend shard{}",
                if http { "http://" } else { "" },
                server.local_addr(),
                if shards == 1 { "" } else { "s" },
            );
            server.run().map_err(|e| e.to_string())
        }
        "client" => {
            arity(command, operands, 1, 2)?;
            let mut client = spanner_serve::Client::connect(&operands[0])
                .map_err(|e| format!("cannot connect to {}: {e}", operands[0]))?;
            match operands.get(1) {
                Some(line) => {
                    let response = client.request_line(line).map_err(|e| e.to_string())?;
                    println!("{response}");
                }
                None => {
                    // Pipe shape: one request per stdin line, one response
                    // per stdout line — streamed, so interactive sessions
                    // and long-lived producers get each answer immediately.
                    use std::io::BufRead;
                    for line in std::io::stdin().lock().lines() {
                        let line = line.map_err(|e| e.to_string())?;
                        if line.trim().is_empty() {
                            continue;
                        }
                        let response = client.request_line(&line).map_err(|e| e.to_string())?;
                        println!("{response}");
                    }
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Prepares a SpannerQL program, rendering errors with their source line
/// and a caret marker.
fn prepare_program(src: &str) -> Result<PreparedQuery, String> {
    PreparedQuery::prepare(src).map_err(|e| format!("in SpannerQL program:\n{}", e.pretty(src)))
}

/// Renders extracted required literals for the selectivity report, lossy
/// on non-UTF-8 byte strings.
fn render_literals(literals: &[Vec<u8>]) -> String {
    if literals.is_empty() {
        return "none".to_string();
    }
    literals
        .iter()
        .map(|l| format!("{:?}", String::from_utf8_lossy(l)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn print_corpus_result(docs: &[Document], out: &CorpusResult) {
    for (line, result) in docs.iter().zip(&out.results) {
        if !result.is_empty() {
            println!("{}\t{}", result.len(), line.text());
        }
    }
    let s = out.stats;
    eprintln!(
        "{} documents ({} bytes), {} mappings in {} matching documents; \
         {} threads, {:?} ({:.1} MiB/s)",
        s.documents,
        s.bytes,
        s.mappings,
        s.matched_documents,
        s.threads,
        s.elapsed,
        s.bytes_per_second() / (1024.0 * 1024.0),
    );
}

/// The `query --store --watch` loop: evaluate once, then apply one
/// mutation per input line and re-evaluate through the maintained view,
/// reporting per tick how little of the corpus was recomputed.
fn run_watch(
    mut store: Store,
    prepared: &PreparedQuery,
    threads: usize,
    ticks: impl std::io::BufRead,
) -> Result<(), String> {
    let mut view = QueryView::unbounded();
    let outcome = store
        .query_view(prepared.engine(), &mut view, threads)
        .map_err(|e| e.to_string())?;
    print_watch_tick(&store, &outcome);
    for line in ticks.lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let mutation = parse_mutation_line(&line)?;
        store.apply(&mutation).map_err(|e| e.to_string())?;
        let outcome = store
            .query_view(prepared.engine(), &mut view, threads)
            .map_err(|e| e.to_string())?;
        print_watch_tick(&store, &outcome);
    }
    Ok(())
}

/// Prints one watch tick: the matching lines, then the incremental
/// accounting on stderr.
fn print_watch_tick(store: &Store, outcome: &ViewQueryOutcome) {
    print_corpus_result(store.documents(), &outcome.output);
    eprintln!(
        "view: generation {}, {} of {} documents re-evaluated ({} served from the view, \
         {} invalidated)",
        outcome.generation,
        outcome.delta_docs,
        store.len(),
        outcome.view_hits,
        outcome.invalidated,
    );
}

/// Parses one watch-mode mutation line: `append <text>`, `update <id>
/// <text>`, or `delete <id>`.
fn parse_mutation_line(line: &str) -> Result<Mutation, String> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
    let id = |text: &str| {
        text.parse::<u32>()
            .map_err(|_| format!("invalid document id `{text}` in mutation `{line}`"))
    };
    match op {
        "append" => Ok(Mutation::Append {
            text: rest.to_string(),
        }),
        "update" => {
            let (target, text) = rest.split_once(' ').unwrap_or((rest, ""));
            Ok(Mutation::Update {
                id: id(target)?,
                text: text.to_string(),
            })
        }
        "delete" => Ok(Mutation::Delete { id: id(rest)? }),
        other => Err(format!(
            "unknown mutation `{other}` (expected `append <text>`, `update <id> <text>`, \
             or `delete <id>`)"
        )),
    }
}

/// Where a document argument dispatches to: standard input (no argument, or
/// the conventional `-`) or a file path.
#[derive(Debug, PartialEq, Eq)]
enum DocSource<'a> {
    Stdin,
    File(&'a str),
}

/// Resolves the optional file operand. `-` selects standard input so a
/// thread count can follow it (`corpus <pattern> - 4` in a pipe).
fn document_source(arg: Option<&String>) -> DocSource<'_> {
    match arg.map(String::as_str) {
        None | Some("-") => DocSource::Stdin,
        Some(path) => DocSource::File(path),
    }
}

fn read_document(path: Option<&String>) -> Result<Document, String> {
    let text = match document_source(path) {
        DocSource::File(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        }
        DocSource::Stdin => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| e.to_string())?;
            buffer
        }
    };
    Ok(Document::new(text))
}

fn print_mapping(doc: &Document, mapping: &Mapping) {
    use std::io::Write;
    let cells: Vec<String> = mapping
        .iter()
        .map(|(v, s)| format!("{v}={s}:{:?}", doc.slice(s)))
        .collect();
    // Ignore broken pipes (e.g. when piped into `head`).
    let _ = writeln!(std::io::stdout(), "{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Writes a scratch document and returns its path.
    fn scratch(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "document-spanners-cli-{}-{name}",
            std::process::id()
        ));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(&argv(&["frobnicate"])).unwrap_err().contains("unknown"));
        assert!(run(&[]).unwrap_err().contains("missing command"));
    }

    #[test]
    fn trailing_arguments_are_rejected() {
        let cases: &[&[&str]] = &[
            &["classify", "{x:a}", "extra"],
            &["extract", "{x:a}", "file", "extra"],
            &["count", "{x:a}", "file", "extra"],
            &["diff", "a", "b", "file", "extra"],
            &["corpus", "a", "file", "2", "extra"],
            &["index", "file", "store", "extra"],
            &["query", "/a/", "file", "extra"],
            &["query", "--trace", "/a/", "file", "extra"],
            &["query", "--corpus", "/a/", "file", "2", "extra"],
            &["query", "--store", "/a/", "store", "2", "extra"],
            &["query", "--store", "--watch", "/a/", "store", "2", "extra"],
            &["explain", "/a/", "extra"],
            &["explain", "--analyze", "/a/", "file", "extra"],
            &["serve", "127.0.0.1:0", "2", "extra"],
            &["serve", "--http", "127.0.0.1:0", "2", "extra"],
            &["client", "127.0.0.1:1", "{}", "extra"],
        ];
        for case in cases {
            let err = run(&argv(case)).unwrap_err();
            assert!(err.contains("unexpected extra argument"), "{case:?}: {err}");
        }
    }

    #[test]
    fn missing_arguments_are_rejected() {
        for case in [
            &["extract"][..],
            &["diff", "a"],
            &["query"],
            &["explain"],
            &["index", "file"],
            &["query", "--store", "/a/"],
            &["query", "--store", "--watch", "/a/"],
            &["explain", "--analyze"],
            &["query", "--trace"],
            &["route"],
            &["route", "127.0.0.1:0"],
            &["route", "--http", "127.0.0.1:0"],
        ] {
            let err = run(&argv(case)).unwrap_err();
            assert!(err.contains("needs at least"), "{case:?}: {err}");
        }
    }

    #[test]
    fn index_and_store_query_round_trip() {
        let corpus: String = (0..40)
            .map(|i| {
                if i % 8 == 0 {
                    format!("line {i}: needle\n")
                } else {
                    format!("line {i}: hay\n")
                }
            })
            .collect();
        let file = scratch("store-corpus", &corpus);
        let store_path = scratch("store-file", "");
        assert_eq!(run(&argv(&["index", &file, &store_path])), Ok(()));
        // A selective program prunes through the index; a literal-free one
        // falls back to the full scan — both must succeed end to end.
        assert_eq!(
            run(&argv(&[
                "query",
                "--store",
                "/.*needle{x: .*}/",
                &store_path,
                "2"
            ])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&["query", "--store", "/{x:[nh]+}/", &store_path])),
            Ok(())
        );
        // A corrupt store file is diagnosed by path.
        let bogus = scratch("store-bogus", "not a store");
        let err = run(&argv(&["query", "--store", "/{x:a}/", &bogus])).unwrap_err();
        assert!(err.contains("invalid store file"), "{err}");
        // The program is validated before the store is read.
        let err = run(&argv(&["query", "--store", "let a = /x/; b", &store_path])).unwrap_err();
        assert!(err.contains("unknown extractor"), "{err}");
        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&store_path).ok();
        std::fs::remove_file(&bogus).ok();
    }

    #[test]
    fn store_dash_operand_validates_before_stdin() {
        // `query --store <program> -` streams the store from stdin, so the
        // program and thread count must be diagnosed without reading it.
        let err = run(&argv(&["query", "--store", "let a = /x/; b", "-"])).unwrap_err();
        assert!(err.contains("unknown extractor"), "{err}");
        let err = run(&argv(&["query", "--store", "/{x:a}/", "-", "nope"])).unwrap_err();
        assert!(err.contains("invalid thread count `nope`"), "{err}");
        // Watch mode owns stdin for mutations: a `-` store is rejected.
        let err = run(&argv(&["query", "--store", "--watch", "/{x:a}/", "-"])).unwrap_err();
        assert!(err.contains("cannot be `-`"), "{err}");
        // And its program/threads validation also precedes any input.
        let err = run(&argv(&[
            "query",
            "--store",
            "--watch",
            "let a = /x/; b",
            "-",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown extractor"), "{err}");
        let err = run(&argv(&["query", "--store", "--watch", "/{x:a}/", "-", "x"])).unwrap_err();
        assert!(err.contains("invalid thread count `x`"), "{err}");
    }

    #[test]
    fn mutation_lines_parse_and_reject() {
        assert_eq!(
            parse_mutation_line("append needle here"),
            Ok(Mutation::Append {
                text: "needle here".into()
            })
        );
        assert_eq!(
            parse_mutation_line("append"),
            Ok(Mutation::Append { text: "".into() }),
            "an empty append is a legal empty document"
        );
        assert_eq!(
            parse_mutation_line("update 3 new text\r"),
            Ok(Mutation::Update {
                id: 3,
                text: "new text".into()
            })
        );
        assert_eq!(
            parse_mutation_line("update 7"),
            Ok(Mutation::Update {
                id: 7,
                text: "".into()
            })
        );
        assert_eq!(
            parse_mutation_line("delete 2"),
            Ok(Mutation::Delete { id: 2 })
        );
        for (line, needle) in [
            ("frobnicate 3", "unknown mutation"),
            ("update x text", "invalid document id `x`"),
            ("delete", "invalid document id ``"),
            ("delete -1", "invalid document id `-1`"),
        ] {
            let err = parse_mutation_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn watch_loop_applies_mutations_and_stays_incremental() {
        let docs = split_lines("alpha needle\nbeta\ngamma");
        let store = Store::build(docs).unwrap();
        let prepared = prepare_program("/.*needle{x:.*}/").unwrap();
        let script = "append delta needle\nupdate 1 beta needle\n\ndelete 0\n";
        assert_eq!(
            run_watch(store, &prepared, 1, std::io::Cursor::new(script)),
            Ok(())
        );
        // A malformed mutation line aborts the loop with its diagnosis.
        let store = Store::build(split_lines("alpha")).unwrap();
        let err = run_watch(store, &prepared, 1, std::io::Cursor::new("explode 1\n")).unwrap_err();
        assert!(err.contains("unknown mutation"), "{err}");
        // An out-of-range id surfaces the store's mutation error.
        let store = Store::build(split_lines("alpha")).unwrap();
        let err = run_watch(store, &prepared, 1, std::io::Cursor::new("delete 9\n")).unwrap_err();
        assert!(err.contains("9"), "{err}");
    }

    #[test]
    fn bad_thread_count_is_diagnosed() {
        let file = scratch("threads", "aa\n");
        let err = run(&argv(&["corpus", "{x:a+}", &file, "two"])).unwrap_err();
        assert!(err.contains("invalid thread count `two`"), "{err}");
        let err = run(&argv(&["query", "--corpus", "/{x:a+}/", &file, "-1"])).unwrap_err();
        assert!(err.contains("invalid thread count"), "{err}");
    }

    #[test]
    fn dash_file_argument_dispatches_to_stdin() {
        // `-` is stdin, so `corpus <pattern> - <threads>` works in a pipe;
        // anything else (including a file literally named "–" or "./-")
        // stays a path lookup.
        let dash = "-".to_string();
        let file = "access.log".to_string();
        let dotdash = "./-".to_string();
        assert_eq!(document_source(None), DocSource::Stdin);
        assert_eq!(document_source(Some(&dash)), DocSource::Stdin);
        assert_eq!(document_source(Some(&file)), DocSource::File("access.log"));
        assert_eq!(document_source(Some(&dotdash)), DocSource::File("./-"));
        // The thread-count operand still parses in the `-` position's wake:
        // `corpus <pattern> - two` must diagnose the count, not the dash.
        let err = run(&argv(&["corpus", "{x:a+}", "-", "two"])).unwrap_err();
        assert!(err.contains("invalid thread count `two`"), "{err}");
        let err = run(&argv(&["query", "--corpus", "/{x:a}/", "-", "nope"])).unwrap_err();
        assert!(err.contains("invalid thread count `nope`"), "{err}");
    }

    #[test]
    fn query_runs_a_program_over_a_file() {
        let file = scratch("query", "aab");
        assert_eq!(run(&argv(&["query", "/{x:a+}b/", &file])), Ok(()));
        assert_eq!(
            run(&argv(&[
                "query",
                "--corpus",
                "let a = /{x:a+}b*/; project x (a);",
                &file,
                "2",
            ])),
            Ok(())
        );
    }

    #[test]
    fn query_trace_and_explain_analyze_run_end_to_end() {
        let file = scratch("trace", "aab");
        assert_eq!(
            run(&argv(&["query", "--trace", "/{x:a+}b/", &file])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&["explain", "--analyze", "/{x:a+}b/", &file])),
            Ok(())
        );
        // The analyze rendering carries the measured annotations.
        let doc = Document::new("aab");
        let text = prepare_program("/{x:a+}b/").unwrap().explain_analyze(&doc);
        assert!(text.contains("analyze    :"), "{text}");
        assert!(text.contains("rows="), "{text}");
        // A traced query that errors still reports the error on exit.
        let err = run(&argv(&["query", "--trace", "let a = /x/; b", &file])).unwrap_err();
        assert!(err.contains("unknown extractor"), "{err}");
    }

    #[test]
    fn query_errors_carry_positions() {
        let err = run(&argv(&["query", "let a = /x/; b", "unused"])).unwrap_err();
        assert!(err.contains("unknown extractor `b`"), "{err}");
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn explain_accepts_a_join_chain() {
        assert_eq!(
            run(&argv(&[
                "explain",
                "let a = /{x:a}b*/; let b = /a{y:b+}/; let c = /{x:a}{y:b+}/; (a join b) join c;",
            ])),
            Ok(())
        );
    }

    #[test]
    fn explain_dispatch_includes_the_scan_plan_section() {
        // The `explain` command dispatches through `prepare_program`; the
        // rendering it prints must carry the scan-plan section.
        assert_eq!(run(&argv(&["explain", "/{x:a+}b/"])), Ok(()));
        let explain = prepare_program("/{x:a+}b/").unwrap().explain();
        assert!(
            explain.contains("scan plan  : 1 compiled scan\n"),
            "{explain}"
        );
        assert!(explain.contains("fast path on"), "{explain}");
        assert!(explain.contains("lazy DFA:"), "{explain}");
    }

    #[test]
    fn serve_and_client_argument_validation() {
        let err = run(&argv(&["serve", "127.0.0.1:0", "two"])).unwrap_err();
        assert!(err.contains("invalid thread count `two`"), "{err}");
        let err = run(&argv(&["serve", "not an address"])).unwrap_err();
        assert!(err.contains("cannot bind"), "{err}");
        let err = run(&argv(&["client"])).unwrap_err();
        assert!(err.contains("needs at least"), "{err}");
        // Port 1 is never listening in the test environment.
        let err = run(&argv(&["client", "127.0.0.1:1", "{}"])).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        let err = run(&argv(&["route", "not an address", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("cannot start router"), "{err}");
        let err = run(&argv(&["route", "127.0.0.1:0", "not an address"])).unwrap_err();
        assert!(err.contains("cannot start router"), "{err}");
    }

    #[test]
    fn client_subcommand_round_trips_against_a_daemon() {
        let server =
            spanner_serve::Server::bind("127.0.0.1:0", spanner_serve::ServeOptions::default())
                .unwrap();
        let (addr, handle) = server.spawn();
        let addr = addr.to_string();
        assert_eq!(
            run(&argv(&[
                "client",
                &addr,
                r#"{"op":"query","program":"/{x:a+}/","doc":"aa"}"#,
            ])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&["client", &addr, r#"{"op":"shutdown"}"#])),
            Ok(())
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn classify_and_extract_still_work() {
        let file = scratch("extract", "ab");
        assert_eq!(run(&argv(&["classify", "{x:a}b"])), Ok(()));
        assert_eq!(run(&argv(&["extract", "{x:a}b", &file])), Ok(()));
        assert_eq!(run(&argv(&["count", "{x:a}b", &file])), Ok(()));
        assert_eq!(run(&argv(&["diff", "{x:a}b", "{x:a}c", &file])), Ok(()));
        assert_eq!(run(&argv(&["corpus", "{x:a}b", &file, "1"])), Ok(()));
    }
}
