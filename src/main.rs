//! `document-spanners` — a small command-line front end.
//!
//! ```text
//! document-spanners extract  <pattern> [file]        enumerate VαW(d)
//! document-spanners count    <pattern> [file]        count the mappings
//! document-spanners classify <pattern>               report the syntactic classes
//! document-spanners diff     <pattern1> <pattern2> [file]
//!                                                    evaluate Vα1 \ α2W(d)
//! document-spanners corpus   <pattern> [file [threads]]
//!                                                    evaluate every line as its
//!                                                    own document, in parallel
//! ```
//!
//! The pattern syntax is the one of `spanner_rgx::parse`; when no file is
//! given the document is read from standard input.

use document_spanners::prelude::*;
use spanner_rgx::RgxClass;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  document-spanners extract  <pattern> [file]");
            eprintln!("  document-spanners count    <pattern> [file]");
            eprintln!("  document-spanners classify <pattern>");
            eprintln!("  document-spanners diff     <pattern1> <pattern2> [file]");
            eprintln!("  document-spanners corpus   <pattern> [file [threads]]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "classify" => {
            let pattern = args.get(1).ok_or("missing pattern")?;
            let alpha = parse(pattern).map_err(|e| e.to_string())?;
            let class = RgxClass::of(&alpha);
            println!("formula      : {alpha}");
            println!("variables    : {:?}", alpha.vars());
            println!("functional   : {}", class.functional);
            println!("sequential   : {}", class.sequential);
            println!("disjunctive functional : {}", class.disjunctive_functional);
            println!("disjunction-free       : {}", class.disjunction_free);
            println!("synchronized (all vars): {}", class.synchronized);
            Ok(())
        }
        "extract" | "count" => {
            let pattern = args.get(1).ok_or("missing pattern")?;
            let doc = read_document(args.get(2))?;
            let alpha = parse(pattern).map_err(|e| e.to_string())?;
            let vsa = compile(&alpha);
            let enumerator = Enumerator::new(&vsa, &doc).map_err(|e| e.to_string())?;
            if command == "count" {
                let count = enumerator.count();
                println!("{count}");
            } else {
                for mapping in enumerator {
                    let mapping = mapping.map_err(|e| e.to_string())?;
                    print_mapping(&doc, &mapping);
                }
            }
            Ok(())
        }
        "diff" => {
            let p1 = args.get(1).ok_or("missing first pattern")?;
            let p2 = args.get(2).ok_or("missing second pattern")?;
            let doc = read_document(args.get(3))?;
            let a1 = compile(&parse(p1).map_err(|e| e.to_string())?);
            let a2 = compile(&parse(p2).map_err(|e| e.to_string())?);
            let result = difference_product_eval(&a1, &a2, &doc, DifferenceOptions::default())
                .map_err(|e| e.to_string())?;
            for mapping in result.iter() {
                print_mapping(&doc, mapping);
            }
            Ok(())
        }
        "corpus" => {
            let pattern = args.get(1).ok_or("missing pattern")?;
            let doc = read_document(args.get(2))?;
            let threads: usize = match args.get(3) {
                Some(t) => t.parse().map_err(|_| format!("bad thread count `{t}`"))?,
                None => 0, // one worker per CPU
            };
            let docs = split_lines(doc.text());
            let alpha = parse(pattern).map_err(|e| e.to_string())?;
            let inst = Instantiation::new().with(0, alpha);
            let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default())
                .map_err(|e| e.to_string())?;
            let out = engine
                .evaluate_with_threads(&docs, threads)
                .map_err(|e| e.to_string())?;
            for (line, result) in docs.iter().zip(&out.results) {
                if !result.is_empty() {
                    println!("{}\t{}", result.len(), line.text());
                }
            }
            let s = out.stats;
            eprintln!(
                "{} documents ({} bytes), {} mappings in {} matching documents; \
                 {} threads, {:?} ({:.1} MiB/s)",
                s.documents,
                s.bytes,
                s.mappings,
                s.matched_documents,
                s.threads,
                s.elapsed,
                s.bytes_per_second() / (1024.0 * 1024.0),
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn read_document(path: Option<&String>) -> Result<Document, String> {
    let text = match path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| e.to_string())?;
            buffer
        }
    };
    Ok(Document::new(text))
}

fn print_mapping(doc: &Document, mapping: &Mapping) {
    use std::io::Write;
    let cells: Vec<String> = mapping
        .iter()
        .map(|(v, s)| format!("{v}={s}:{:?}", doc.slice(s)))
        .collect();
    // Ignore broken pipes (e.g. when piped into `head`).
    let _ = writeln!(std::io::stdout(), "{}", cells.join("\t"));
}
