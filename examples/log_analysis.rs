//! Log analysis: joins, projections and differences over an access log.
//!
//! Demonstrates the algebra on a larger synthetic corpus: which client IPs
//! produced requests but never produced a server error? The query is
//! `π_{ip}(requests) \ π_{ip}(errors)` — a difference whose operands share a
//! single variable, the tractable regime of Theorem 4.3.
//!
//! Run with: `cargo run --release --example log_analysis [lines]`

use document_spanners::prelude::*;
use document_spanners::workloads;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let doc = workloads::access_log(lines, 42);
    println!(
        "analysing a {}-line access log ({} bytes)\n",
        lines,
        doc.len()
    );

    let requests = compile(&workloads::log_request_extractor().unwrap());
    let errors = compile(&workloads::log_error_extractor().unwrap());

    // 1. Plain extraction with polynomial-delay enumeration.
    let t = Instant::now();
    let all_requests = evaluate(&requests, &doc).unwrap();
    println!(
        "extracted {} request tuples in {:?}",
        all_requests.len(),
        t.elapsed()
    );

    // 2. Projection to the ip attribute (automaton-level projection).
    let ip_only = requests.project(&VarSet::from_iter(["ip"]));
    let error_ips = errors.project(&VarSet::from_iter(["ip"]));

    // 3. Difference: IPs with requests but no errors (ad-hoc compilation).
    let t = Instant::now();
    let clean =
        difference_product_eval(&ip_only, &error_ips, &doc, DifferenceOptions::default()).unwrap();
    let clean_ips: BTreeSet<&str> = clean
        .iter()
        .filter_map(|m| m.get(&"ip".into()))
        .map(|s| doc.slice(s))
        .collect();
    println!(
        "{} distinct IPs without any 5xx response (difference evaluated in {:?})",
        clean_ips.len(),
        t.elapsed()
    );
    for ip in clean_ips.iter().take(10) {
        println!("  {ip}");
    }
    if clean_ips.len() > 10 {
        println!("  … and {} more", clean_ips.len() - 10);
    }

    // 4. The same query phrased as an RA tree (extraction complexity view).
    let tree = RaTree::difference(
        RaTree::project(VarSet::from_iter(["ip"]), RaTree::leaf(0)),
        RaTree::project(VarSet::from_iter(["ip"]), RaTree::leaf(1)),
    );
    let inst = Instantiation::new()
        .with(0, workloads::log_request_extractor().unwrap())
        .with(1, workloads::log_error_extractor().unwrap());
    println!(
        "\nRA tree {tree} shares at most {} variable(s) per binary node",
        spanner_algebra::shared_variable_bound(&tree, &inst).unwrap()
    );
    let t = Instant::now();
    let via_tree = evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap();
    println!(
        "RA-tree evaluation: {} mappings in {:?} (matches the direct pipeline: {})",
        via_tree.len(),
        t.elapsed(),
        via_tree == clean
    );
}
