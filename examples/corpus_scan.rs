//! The corpus engine: one compiled plan, many documents, many threads.
//!
//! Generates an access-log corpus (one document per line), compiles a
//! projected request-extractor plan once, and evaluates the whole corpus
//! with 1..=4 worker threads, verifying that the per-document results are
//! identical for every thread count.
//!
//! Run with: `cargo run --release --example corpus_scan [lines]`

use document_spanners::prelude::*;
use document_spanners::workloads;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let corpus = workloads::access_log(lines, 11);
    let docs = split_lines(corpus.text());
    println!("corpus: {} documents, {} bytes", docs.len(), corpus.len());

    // One compiled plan — π_{path,status} over a request extractor — shared
    // by every worker thread.
    let alpha = parse(
        r#"{ip:\d+\.\d+\.\d+\.\d+} - ({user:\l+}|-) \[[\d/]+\] "{method:\u+} {path:[\w/\.]+}" {status:\d\d\d} \d+"#,
    )
    .unwrap();
    let tree = RaTree::project(VarSet::from_iter(["path", "status"]), RaTree::leaf(0));
    let inst = Instantiation::new().with(0, alpha);
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
    println!(
        "plan: {} ({})\n",
        engine.plan().tree(),
        if engine.plan().is_static() {
            "fully static — zero per-document compilation"
        } else {
            "document-dependent parts recompiled per document"
        }
    );

    let mut baseline: Option<Vec<MappingSet>> = None;
    for threads in 1..=4 {
        let out = engine.evaluate_with_threads(&docs, threads).unwrap();
        let s = out.stats;
        println!(
            "threads={}: {} mappings in {} docs, {:?} ({:.1} MiB/s)",
            s.threads,
            s.mappings,
            s.matched_documents,
            s.elapsed,
            s.bytes_per_second() / (1024.0 * 1024.0),
        );
        match &baseline {
            None => baseline = Some(out.results),
            Some(expected) => assert_eq!(
                expected, &out.results,
                "thread count must not change the results"
            ),
        }
    }
}
