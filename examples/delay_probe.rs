//! Measures the *delay* distribution of the enumerator (Theorem 2.5).
//!
//! Enumerates a large result set over a growing document and reports the
//! time between consecutive mappings — the quantity the paper's
//! polynomial-delay guarantees are about. The maximum delay should grow
//! polynomially (roughly linearly) with the document, independently of the
//! number of answers already produced.
//!
//! Run with: `cargo run --release --example delay_probe [max_kib]`

use document_spanners::prelude::*;
use document_spanners::workloads;
use std::time::Instant;

fn main() {
    let max_kib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    let alpha = workloads::student_info_extractor().unwrap();
    let vsa = compile(&alpha);
    println!(
        "extractor: {} automaton states, {} variables",
        vsa.state_count(),
        vsa.vars().len()
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "doc bytes", "mappings", "total", "first", "mean delay", "max delay"
    );

    let mut lines = 8;
    loop {
        let doc = workloads::student_records(lines, 11);
        if doc.len() > max_kib * 1024 {
            break;
        }
        let start = Instant::now();
        let mut enumerator = Enumerator::new(&vsa, &doc).unwrap();
        let mut last = Instant::now();
        let mut first_delay = None;
        let mut max_delay = std::time::Duration::ZERO;
        let mut count = 0usize;
        for mapping in &mut enumerator {
            mapping.unwrap();
            let now = Instant::now();
            let delay = now - last;
            last = now;
            if first_delay.is_none() {
                first_delay = Some(delay);
            }
            max_delay = max_delay.max(delay);
            count += 1;
        }
        let total = start.elapsed();
        println!(
            "{:>10} {:>10} {:>12?} {:>12?} {:>12?} {:>12?}",
            doc.len(),
            count,
            total,
            first_delay.unwrap_or_default(),
            total / count.max(1) as u32,
            max_delay
        );
        lines *= 2;
    }
}
