//! RA trees with black-box spanners (the paper's Section 5, Examples 5.1 and 5.4).
//!
//! Builds the Figure 2 query tree `π_{student}((mail ⋈ phone) \ rec)` over a
//! student corpus, first with a regex-formula recommendation extractor and
//! then with a *black-box* sentiment spanner in its place (Example 5.4):
//! "students that have no positive recommendation".
//!
//! Run with: `cargo run --release --example ra_query [lines]`

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_algebra::{optimize_ra, shared_variable_bound};
use std::time::Instant;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let doc = workloads::student_records_with_recommendations(lines, 0.6, 7);
    println!(
        "student corpus: {} lines, {} bytes\n",
        doc.text().lines().count(),
        doc.len()
    );

    // Atomic extractors: (student, mail), (student, phone), (student, rec).
    let alpha_sm =
        parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap();
    let alpha_sp = parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap();
    let alpha_nr = parse(r"(.*\n)?{student:\u\l+} rec {rec:[\l ]+}\n.*").unwrap();

    // The RA tree of Figure 2: π_{student}((?0 ⋈ ?1) \ ?2).
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    println!("RA tree: {tree}");

    // Instantiation I: all three placeholders are regex formulas.
    let inst_regex = Instantiation::new()
        .with(0, alpha_sm.clone())
        .with(1, alpha_sp.clone())
        .with(2, alpha_nr);
    println!(
        "shared-variable bound k = {}",
        shared_variable_bound(&tree, &inst_regex).unwrap()
    );

    // Planner quickstart: `evaluate_ra` optimizes by default; the rewritten
    // plan can also be inspected (here the projection sinks into the join
    // operands but stops above the difference), compiled once with
    // `CompiledPlan`, and fanned out over a corpus with `CorpusEngine`.
    let optimized = optimize_ra(&tree, &inst_regex).unwrap();
    println!("optimized plan: {optimized}");
    let plan = CompiledPlan::compile(&tree, &inst_regex, RaOptions::default()).unwrap();
    println!(
        "compiled plan is {}",
        if plan.is_static() {
            "static"
        } else {
            "dynamic"
        }
    );
    let t = Instant::now();
    let without_rec = evaluate_ra(&tree, &inst_regex, &doc, RaOptions::default()).unwrap();
    println!(
        "\nstudents with mail and phone but no recommendation at all: {} (in {:?})",
        without_rec.len(),
        t.elapsed()
    );
    print_students(&doc, &without_rec);

    // Instantiation II (Example 5.4): replace the recommendation extractor by
    // a black-box sentiment classifier — students with no *positive*
    // recommendation. The black box is incorporated by ad-hoc compilation
    // (Corollary 5.3).
    let inst_blackbox = Instantiation::new()
        .with(0, alpha_sm)
        .with(1, alpha_sp)
        .with_black_box(
            2,
            SentimentSpanner::new("student", "posrec", SentimentSpanner::default_lexicon()),
        );
    let t = Instant::now();
    let without_positive = evaluate_ra(&tree, &inst_blackbox, &doc, RaOptions::default()).unwrap();
    println!(
        "\nstudents with mail and phone but no positive recommendation: {} (in {:?})",
        without_positive.len(),
        t.elapsed()
    );
    print_students(&doc, &without_positive);

    // Sanity: the black-box variant can only keep more students (a positive
    // recommendation is a special kind of recommendation).
    assert!(without_positive.len() >= without_rec.len());
}

fn print_students(doc: &Document, result: &MappingSet) {
    let mut names: Vec<&str> = result
        .iter()
        .filter_map(|m| m.get(&"student".into()))
        .map(|s| doc.slice(s))
        .collect();
    names.sort_unstable();
    names.dedup();
    for chunk in names.chunks(8) {
        println!("  {}", chunk.join(" "));
    }
}
