//! SpannerQL end to end: write a query as text, prepare it once, evaluate
//! single documents and a corpus.
//!
//! The query extracts (user, host) pairs from email-shaped lines with two
//! reusable bindings, then filters the admin accounts out with the
//! difference operator — the whole Figure 2 pipeline (join, projection,
//! difference) driven from a five-line program.
//!
//! Run with: `cargo run --release --example ql_demo`

use document_spanners::prelude::*;

const PROGRAM: &str = r#"
# Bindings are reusable extractors; the regex syntax is spanner_rgx's.
let pair = /{user:[a-z]+}@{host:[a-z]+(\.[a-z]+)*}( .*)?/;
let dotted = /[a-z]+@[a-z]+\.{tld:[a-z]+}( .*)?/;

# (user, host, tld) for every dotted address, minus the admin accounts.
project user, tld (pair join dotted)
  minus /{user:admin[a-z]*}@[a-z]+\.{tld:[a-z]+}( .*)?/;
"#;

fn main() {
    // Prepare once: parse → lower → optimize → compile. Errors point at the
    // offending source position.
    let query = match PreparedQuery::prepare(PROGRAM) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{}", e.pretty(PROGRAM));
            std::process::exit(1);
        }
    };
    println!("{}", query.explain());

    // Single documents, streaming.
    for text in [
        "bob@edu.ru welcome",
        "adminx@edu.ru hello",
        "carol@site.org",
    ] {
        let doc = Document::new(text);
        let mappings: Vec<_> = query
            .stream(&doc)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        println!("{text:?}: {} mapping(s)", mappings.len());
        for m in &mappings {
            let cells: Vec<String> = m
                .iter()
                .map(|(v, s)| format!("{v}={:?}", doc.slice(s)))
                .collect();
            println!("  {}", cells.join(" "));
        }
    }

    // A line corpus through the same prepared plan, in parallel.
    let corpus = "bob@edu.ru a\nadmin@edu.uk b\neve@dot.net c\nplain text\n";
    let docs = split_lines(corpus);
    let out = query.evaluate_corpus(&docs, 2).unwrap();
    println!(
        "\ncorpus: {} lines, {} matching, {} mappings in {:?}",
        out.stats.documents, out.stats.matched_documents, out.stats.mappings, out.stats.elapsed
    );

    // A broken program for comparison: the error is spanned and pretty.
    let broken = "let a = /{x:a/; a";
    if let Err(e) = PreparedQuery::prepare(broken) {
        println!("\nerror reporting demo:\n{}", e.pretty(broken));
    }
}
