//! Quickstart: the paper's running example (Examples 2.1, 2.2 and 2.4).
//!
//! Extracts student records (optional first name, last name, optional phone,
//! mail) from the Figure 1 document with a schemaless regex formula, then
//! uses the difference operator to keep only the students whose mail address
//! is *not* in the UK.
//!
//! Run with: `cargo run --release --example quickstart`

use document_spanners::prelude::*;
use document_spanners::workloads;

fn main() {
    // The input document dStudents of Figure 1.
    let doc = workloads::students_figure_1();
    println!("document ({} bytes):\n{}", doc.len(), doc.text());

    // αinfo (Example 2.2): sequential but not functional — the first name and
    // the phone number are optional, so different mappings have different
    // domains (schemaless semantics).
    let alpha_info = workloads::student_info_extractor().expect("valid extractor");
    println!("α_info = {alpha_info}\n");

    let info = compile(&alpha_info);
    let mappings = evaluate(&info, &doc).expect("sequential automaton");
    println!("V α_info W(d) — {} mappings:", mappings.len());
    print_table(&doc, &mappings);

    // Example 2.4: subtract the UK addresses with the difference operator.
    // The compilation is ad hoc (document-dependent), as in Lemma 4.2 /
    // Theorem 4.8 — static compilation of the difference is impossible
    // without an exponential blow-up.
    let alpha_uk = workloads::uk_mail_extractor().expect("valid extractor");
    let uk = compile(&alpha_uk);
    let kept = difference_product_eval(&info, &uk, &doc, DifferenceOptions::default())
        .expect("difference evaluation");
    println!(
        "\nV α_info \\ α_UKm W(d) — {} mappings (UK students removed):",
        kept.len()
    );
    print_table(&doc, &kept);
}

/// Prints the mappings as a table, resolving spans to text.
fn print_table(doc: &Document, mappings: &MappingSet) {
    let columns = ["first", "last", "phone", "mail"];
    println!(
        "  {:<10} {:<14} {:<9} {:<14}",
        columns[0], columns[1], columns[2], columns[3]
    );
    for m in mappings.iter() {
        let cell = |name: &str| {
            m.get(&Variable::new(name))
                .map(|s| format!("{} {s}", doc.slice(s)))
                .unwrap_or_else(|| "⊥".to_string())
        };
        println!(
            "  {:<10} {:<14} {:<9} {:<14}",
            cell("first"),
            cell("last"),
            cell("phone"),
            cell("mail")
        );
    }
}
