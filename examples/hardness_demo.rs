//! The hardness reductions, executably (Theorems 3.1 and 4.1).
//!
//! Takes random 3-CNF formulas near the satisfiability threshold, builds the
//! paper's join and difference instances from them, and shows that spanner
//! nonemptiness tracks satisfiability — and that the instances blow up
//! quickly, which is the point of the NP-hardness results.
//!
//! Run with: `cargo run --release --example hardness_demo [max_vars]`

use document_spanners::prelude::*;
use document_spanners::reductions::{
    difference_hardness_instance, dpll, join_hardness_instance, random_3cnf,
};
use std::time::Instant;

fn main() {
    let max_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("Theorem 3.1 — 3SAT ≤ nonemptiness of a join of sequential regex formulas");
    println!(
        "{:>5} {:>8} {:>6} {:>12} {:>12} {:>10}",
        "vars", "clauses", "SAT?", "spanner", "DPLL", "agree"
    );
    for n in 2..=max_vars.min(5) {
        let cnf = random_3cnf(n, 2.0, n as u64);
        let t = Instant::now();
        let sat = dpll(&cnf).is_some();
        let dpll_time = t.elapsed();

        let instance = join_hardness_instance(&cnf);
        let gamma1 = compile(&instance.gamma1);
        let gamma2 = compile(&instance.gamma2);
        let t = Instant::now();
        // Evaluate the join through the FPT compilation pipeline;
        // nonemptiness of the compiled automaton (checked on its Boolean
        // projection, since the instance has 2·n·m capture variables) is the
        // reduction's answer. The compilation is exponential in the shared
        // variables, so a state budget keeps the demo bounded.
        let limits = document_spanners::vset::JoinOptions {
            max_states: 500_000,
        };
        match document_spanners::vset::join_with_options(&gamma1, &gamma2, limits) {
            Ok(joined) => {
                let boolean = joined.project(&VarSet::new());
                let nonempty =
                    document_spanners::vset::nfa_accepts(&boolean, &instance.doc).unwrap();
                let spanner_time = t.elapsed();
                println!(
                    "{:>5} {:>8} {:>6} {:>12?} {:>12?} {:>10}",
                    n,
                    cnf.num_clauses(),
                    sat,
                    spanner_time,
                    dpll_time,
                    nonempty == sat
                );
                assert_eq!(nonempty, sat, "the reduction must preserve satisfiability");
            }
            Err(_) => {
                println!(
                    "{:>5} {:>8} {:>6} {:>12} {:>12?} {:>10}",
                    n,
                    cnf.num_clauses(),
                    sat,
                    "state budget exceeded",
                    dpll_time,
                    "-"
                );
                break;
            }
        }
    }

    println!("\nTheorem 4.1 — 3SAT ≤ nonemptiness of a difference of functional regex formulas");
    println!(
        "{:>5} {:>8} {:>6} {:>12} {:>10}",
        "vars", "clauses", "SAT?", "spanner", "agree"
    );
    for n in 2..=max_vars.clamp(2, 7) {
        let cnf = random_3cnf(n, 4.26, 100 + n as u64);
        let sat = dpll(&cnf).is_some();
        let instance = difference_hardness_instance(&cnf);
        let gamma1 = compile(&instance.gamma1);
        let gamma2 = compile(&instance.gamma2);
        let t = Instant::now();
        let diff = difference_product_eval(
            &gamma1,
            &gamma2,
            &instance.doc,
            DifferenceOptions::default(),
        )
        .unwrap();
        let spanner_time = t.elapsed();
        println!(
            "{:>5} {:>8} {:>6} {:>12?} {:>10}",
            n,
            cnf.num_clauses(),
            sat,
            spanner_time,
            diff.is_empty() != sat
        );
        assert_ne!(diff.is_empty(), sat);
    }
    println!("\nBoth reductions agree with DPLL on every instance — and the spanner-side");
    println!("running time grows much faster, as the NP-hardness results predict.");
}
