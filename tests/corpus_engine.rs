//! Concurrency tests for the corpus engine: the worker count must never
//! change what is computed — only how fast.

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_algebra::evaluate_ra_materialized;
use spanner_core::MappingSet;

/// The Figure 2 student query over a per-line corpus — a dynamic plan (the
/// difference node recompiles per document).
fn student_query() -> (RaTree, Instantiation) {
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let inst = Instantiation::new()
        .with(
            0,
            parse(r"(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}( .*)?").unwrap(),
        )
        .with(
            1,
            parse(r"(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap(),
        )
        .with(2, parse(r"{student:\u\l+} rec {rec:[\l ]+}").unwrap());
    (tree, inst)
}

fn student_engine() -> CorpusEngine {
    let (tree, inst) = student_query();
    CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap()
}

/// A static plan (pure projection over a regex leaf).
fn log_engine() -> CorpusEngine {
    let tree = RaTree::project(VarSet::from_iter(["path", "status"]), RaTree::leaf(0));
    let inst = Instantiation::new().with(
        0,
        parse(
            r#"{ip:\d+\.\d+\.\d+\.\d+} - ({user:\l+}|-) \[[\d/]+\] "{method:\u+} {path:[\w/\.]+}" {status:\d\d\d} \d+"#,
        )
        .unwrap(),
    );
    CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap()
}

#[test]
fn thread_count_does_not_change_results() {
    let corpus = workloads::access_log(120, 3);
    let mut docs = split_lines(corpus.text());
    // An empty document in the middle of the corpus must be handled too.
    docs.insert(60, Document::new(""));
    let engine = log_engine();
    assert!(engine.plan().is_static());

    let baseline = engine.evaluate_with_threads(&docs, 1).unwrap();
    assert_eq!(baseline.stats.threads, 1);
    assert!(baseline.stats.mappings > 0);
    assert!(baseline.results[60].is_empty());
    for threads in [2usize, 3, 8, 1024] {
        let out = engine.evaluate_with_threads(&docs, threads).unwrap();
        assert_eq!(
            out.results, baseline.results,
            "{threads} threads changed the per-document results"
        );
        assert_eq!(out.stats.mappings, baseline.stats.mappings);
        assert_eq!(
            out.stats.matched_documents,
            baseline.stats.matched_documents
        );
        // Workers are never oversubscribed past the corpus size.
        assert!(out.stats.threads <= docs.len());
    }
}

#[test]
fn dynamic_plans_are_thread_safe_too() {
    let corpus = workloads::student_records_with_recommendations(40, 0.6, 7);
    let docs = split_lines(corpus.text());
    let engine = student_engine();
    assert!(!engine.plan().is_static());

    let single = engine.evaluate_with_threads(&docs, 1).unwrap();
    let multi = engine.evaluate_with_threads(&docs, 4).unwrap();
    assert_eq!(single.results, multi.results);

    // And both match per-document materialized evaluation of the original
    // tree.
    let (tree, inst) = student_query();
    for (doc, actual) in docs.iter().zip(&single.results) {
        let oracle = evaluate_ra_materialized(&tree, &inst, doc).unwrap();
        assert_eq!(actual, &oracle, "on {:?}", doc.text());
    }
}

#[test]
fn empty_corpus_and_empty_documents() {
    let engine = log_engine();
    // Empty corpus.
    let out = engine.evaluate_with_threads(&[], 4).unwrap();
    assert!(out.results.is_empty());
    assert_eq!(
        out.stats,
        CorpusStats {
            documents: 0,
            bytes: 0,
            mappings: 0,
            matched_documents: 0,
            threads: out.stats.threads,
            docs_skipped: 0,
            docs_rejected: 0,
            elapsed: out.stats.elapsed,
        }
    );

    // A corpus made only of empty documents.
    let docs = vec![Document::new(""), Document::new("")];
    let out = engine.evaluate_with_threads(&docs, 2).unwrap();
    assert_eq!(out.results, vec![MappingSet::new(), MappingSet::new()]);
    assert_eq!(out.stats.matched_documents, 0);
}

#[test]
fn zero_threads_means_auto() {
    let docs = split_lines(workloads::access_log(10, 1).text());
    let engine = log_engine();
    let out = engine.evaluate_with_threads(&docs, 0).unwrap();
    assert!(out.stats.threads >= 1);
    assert_eq!(out.results.len(), docs.len());
    assert_eq!(
        out.results,
        engine.evaluate_with_threads(&docs, 1).unwrap().results
    );
}
