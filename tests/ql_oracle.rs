//! Differential tests for the SpannerQL front end.
//!
//! Seeded random programs are generated *together with* the `RaTree` +
//! `Instantiation` they must lower to (`spanner_workloads::random_ql`).
//! Parsing + preparing the text must evaluate bit-identically to the
//! programmatic pair through `evaluate_ra` — on single documents, and via
//! the corpus engine with 1 and N worker threads. A fuzz-ish suite mutates
//! program texts and checks that the whole pipeline reports spanned errors
//! instead of panicking.

use document_spanners::prelude::*;
use spanner_workloads::{random_ql_program, RandomQlConfig, RandomQlProgram};

/// Short documents over the random-formula alphabet (`abc`); evaluation
/// through compiled joins is exponential in the worst case, so inputs stay
/// small.
const DOCS: [&str; 5] = ["", "a", "ab", "bca", "abab"];

fn cfg(seed: u64) -> RandomQlConfig {
    RandomQlConfig {
        bindings: 2 + (seed % 2) as usize,
        depth: 2 + (seed % 2) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

/// 120 random programs: the text lowers to exactly the programmatic tree,
/// and `PreparedQuery` evaluation matches `evaluate_ra` on every document —
/// with the planner on and off.
#[test]
fn ql_evaluation_is_bit_identical_to_programmatic_ra() {
    for seed in 0..120u64 {
        let RandomQlProgram { text, tree, inst } = random_ql_program(cfg(seed), seed);
        let lowered = parse_program(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{text}", e.pretty(&text)))
            .lower()
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{text}", e.pretty(&text)));
        assert_eq!(lowered.tree, tree, "seed {seed}:\n{text}");
        assert_eq!(lowered.inst.len(), inst.len(), "seed {seed}:\n{text}");

        for options in [RaOptions::default(), RaOptions::unoptimized()] {
            let prepared = PreparedQuery::prepare_with_options(&text, options)
                .unwrap_or_else(|e| panic!("seed {seed}: {}\n{text}", e.pretty(&text)));
            for doc_text in DOCS {
                let doc = Document::new(doc_text);
                let expected = evaluate_ra(&tree, &inst, &doc, options).unwrap();
                let actual = prepared.evaluate(&doc).unwrap();
                assert_eq!(
                    actual, expected,
                    "seed {seed} on {doc_text:?} (optimize={}):\n{text}",
                    options.optimize
                );
            }
        }
    }
}

/// The prepared query's corpus path returns, for every document and every
/// thread count, exactly what single-document evaluation returns.
#[test]
fn ql_corpus_evaluation_matches_single_document() {
    let docs: Vec<Document> = DOCS.iter().map(|t| Document::new(*t)).collect();
    for seed in 0..30u64 {
        let RandomQlProgram { text, tree, inst } = random_ql_program(cfg(seed), seed + 50_000);
        let prepared = PreparedQuery::prepare(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{text}", e.pretty(&text)));
        let single = prepared.evaluate_corpus(&docs, 1).unwrap();
        let sharded = prepared.evaluate_corpus(&docs, 3).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            let expected = evaluate_ra(&tree, &inst, doc, RaOptions::default()).unwrap();
            assert_eq!(single.results[i], expected, "seed {seed} doc {i}:\n{text}");
            assert_eq!(sharded.results[i], expected, "seed {seed} doc {i}:\n{text}");
        }
    }
}

/// The prepared stream and the materialized evaluation agree mapping-for-
/// mapping.
#[test]
fn ql_stream_agrees_with_evaluate() {
    for seed in 0..20u64 {
        let RandomQlProgram { text, .. } = random_ql_program(cfg(seed), seed + 90_000);
        let prepared = PreparedQuery::prepare(&text).unwrap();
        for doc_text in DOCS {
            let doc = Document::new(doc_text);
            let streamed: MappingSet = prepared
                .stream(&doc)
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(
                streamed,
                prepared.evaluate(&doc).unwrap(),
                "seed {seed} on {doc_text:?}:\n{text}"
            );
        }
    }
}

/// Deterministic pseudo-random byte stream (no rand dependency needed for
/// the mutator).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Mutated programs (truncations, character flips, token insertions and
/// deletions) either prepare cleanly or fail with an error whose span stays
/// inside the source — the pipeline must never panic.
#[test]
fn mutated_programs_fail_gracefully_with_positions() {
    const SNIPPETS: [&str; 12] = [
        "/", "(", ")", ";", ",", "{", "}", "project", "join x", "let", "π", "\\",
    ];
    let mut rng = XorShift(0x5eed);
    let mut prepared_ok = 0usize;
    let mut spanned_errors = 0usize;
    for seed in 0..60u64 {
        let base = random_ql_program(cfg(seed), seed + 70_000).text;
        for _ in 0..6 {
            let mut mutated = base.clone();
            match rng.below(4) {
                0 => {
                    // Truncate at a character boundary.
                    let mut cut = rng.below(mutated.len() + 1);
                    while !mutated.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    mutated.truncate(cut);
                }
                1 => {
                    // Replace one character with a random ASCII one.
                    let chars: Vec<char> = mutated.chars().collect();
                    if !chars.is_empty() {
                        let i = rng.below(chars.len());
                        let replacement = (b' ' + rng.below(95) as u8) as char;
                        mutated = chars
                            .iter()
                            .enumerate()
                            .map(|(j, &c)| if j == i { replacement } else { c })
                            .collect();
                    }
                }
                2 => {
                    // Insert a snippet at a character boundary.
                    let mut at = rng.below(mutated.len() + 1);
                    while !mutated.is_char_boundary(at) {
                        at -= 1;
                    }
                    mutated.insert_str(at, SNIPPETS[rng.below(SNIPPETS.len())]);
                }
                _ => {
                    // Delete one character.
                    let chars: Vec<char> = mutated.chars().collect();
                    if !chars.is_empty() {
                        let i = rng.below(chars.len());
                        mutated = chars
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &c)| c)
                            .collect();
                    }
                }
            }
            match PreparedQuery::prepare(&mutated) {
                Ok(_) => prepared_ok += 1,
                Err(e) => {
                    if let Some(span) = e.span {
                        spanned_errors += 1;
                        assert!(
                            span.start <= mutated.len() && span.start <= span.end,
                            "span {span:?} outside source (len {}): {e}\n{mutated}",
                            mutated.len()
                        );
                    }
                    // Rendering must not panic either.
                    let _ = e.pretty(&mutated);
                }
            }
        }
    }
    // The mutator must exercise both outcomes to mean anything.
    assert!(prepared_ok > 0, "no mutated program prepared cleanly");
    assert!(
        spanned_errors > 0,
        "no mutated program produced a spanned error"
    );
}
