//! Random-plan differential tests for the query planner.
//!
//! Seeded random RA trees over random sequential automata and regex
//! formulas are evaluated three ways on every document: through the
//! materialized oracle (`evaluate_ra_materialized`, node-by-node relational
//! algebra), through the unoptimized compilation pipeline
//! (`RaOptions::unoptimized()`), and through the optimized pipeline (the
//! default). All three must agree exactly — the same discipline as
//! `tests/compiled_oracle.rs`, one level up the stack.

use document_spanners::prelude::*;
use spanner_algebra::{evaluate_ra_materialized, optimize_ra, shared_variable_bound, tree_vars};
use spanner_workloads::{random_ra_tree, RandomRaConfig};

/// Short documents over the generator's alphabets (`ab` for automata,
/// `abc` for regex formulas); the materialized oracle is exponential, so
/// inputs must stay small.
const DOCS: [&str; 5] = ["", "a", "ab", "bca", "abab"];

fn cfg(seed: u64) -> RandomRaConfig {
    RandomRaConfig {
        depth: 2 + (seed % 2) as usize,
        leaves: 2 + (seed % 3) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

/// 100 random plans: the optimized and unoptimized pipelines both agree
/// with the materialized oracle on every document.
#[test]
fn optimized_plans_agree_with_oracle() {
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed);
        let optimized_tree = optimize_ra(&tree, &inst).unwrap();
        for text in DOCS {
            let doc = Document::new(text);
            let oracle = evaluate_ra_materialized(&tree, &inst, &doc).unwrap();
            let unoptimized = evaluate_ra(&tree, &inst, &doc, RaOptions::unoptimized()).unwrap();
            assert_eq!(
                unoptimized, oracle,
                "seed {seed} on {text:?} (as written): {tree}"
            );
            let optimized = evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap();
            assert_eq!(
                optimized, oracle,
                "seed {seed} on {text:?} (optimized {optimized_tree} from {tree})"
            );
        }
    }
}

/// The compiled physical plan evaluates exactly like the oracle, for every
/// random tree (static or not).
#[test]
fn compiled_plans_agree_with_oracle() {
    let mut static_plans = 0usize;
    for seed in 0..60u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed.wrapping_add(10_000));
        let plan = CompiledPlan::compile(&tree, &inst, RaOptions::default()).unwrap();
        if plan.is_static() {
            static_plans += 1;
        }
        for text in DOCS {
            let doc = Document::new(text);
            let oracle = evaluate_ra_materialized(&tree, &inst, &doc).unwrap();
            assert_eq!(
                plan.evaluate(&doc).unwrap(),
                oracle,
                "seed {seed} on {text:?}: {tree}"
            );
        }
    }
    // The generator must exercise the compile-once fast path, not only the
    // document-dependent one.
    assert!(static_plans > 0, "no random plan compiled statically");
}

/// The corpus engine returns, for each document, exactly what per-document
/// evaluation returns — regardless of the worker count.
#[test]
fn corpus_engine_agrees_with_oracle() {
    let docs: Vec<Document> = DOCS.iter().map(|t| Document::new(*t)).collect();
    for seed in 0..25u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed.wrapping_add(20_000));
        let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
        let out = engine.evaluate_with_threads(&docs, 3).unwrap();
        for (doc, actual) in docs.iter().zip(&out.results) {
            let oracle = evaluate_ra_materialized(&tree, &inst, doc).unwrap();
            assert_eq!(actual, &oracle, "seed {seed} on {:?}: {tree}", doc.text());
        }
    }
}

/// The 100-seed differential oracle for the physical operator executor:
/// every evaluation surface of the lowered plan — materializing `evaluate`,
/// the pull-iterator `stream`, and the corpus engine at 1 and 3 workers —
/// is bit-identical to `evaluate_ra_materialized`, with the logical
/// optimizer both on and off.
#[test]
fn physical_executor_matches_oracle_on_all_surfaces() {
    let docs: Vec<Document> = DOCS.iter().map(|t| Document::new(*t)).collect();
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed.wrapping_add(40_000));
        let oracles: Vec<MappingSet> = docs
            .iter()
            .map(|doc| evaluate_ra_materialized(&tree, &inst, doc).unwrap())
            .collect();
        for options in [RaOptions::default(), RaOptions::unoptimized()] {
            let plan = CompiledPlan::compile(&tree, &inst, options).unwrap();
            for (doc, oracle) in docs.iter().zip(&oracles) {
                assert_eq!(
                    &plan.evaluate(doc).unwrap(),
                    oracle,
                    "evaluate: seed {seed} (optimize={}) on {:?}: {tree}",
                    options.optimize,
                    doc.text()
                );
                let streamed: Vec<Mapping> =
                    plan.stream(doc).unwrap().collect::<Result<_, _>>().unwrap();
                let as_set: MappingSet = streamed.iter().cloned().collect();
                assert_eq!(
                    streamed.len(),
                    as_set.len(),
                    "stream produced duplicates: seed {seed} on {:?}: {tree}",
                    doc.text()
                );
                assert_eq!(
                    &as_set,
                    oracle,
                    "stream: seed {seed} (optimize={}) on {:?}: {tree}",
                    options.optimize,
                    doc.text()
                );
            }
            let engine = CorpusEngine::from_plan(plan);
            for threads in [1usize, 3] {
                let out = engine.evaluate_with_threads(&docs, threads).unwrap();
                for (i, oracle) in oracles.iter().enumerate() {
                    assert_eq!(
                        &out.results[i],
                        oracle,
                        "corpus({threads} threads): seed {seed} on {:?}: {tree}",
                        docs[i].text()
                    );
                }
            }
        }
    }
}

/// Sanity on the rewrite output itself: the optimized tree keeps the
/// declared variable set and never worsens the Theorem 5.2 parameter.
#[test]
fn optimized_trees_keep_schema_and_bound() {
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed.wrapping_add(30_000));
        let optimized = optimize_ra(&tree, &inst).unwrap();
        assert_eq!(
            tree_vars(&optimized, &inst).unwrap(),
            tree_vars(&tree, &inst).unwrap(),
            "seed {seed}: {tree} vs {optimized}"
        );
        assert!(
            shared_variable_bound(&optimized, &inst).unwrap()
                <= shared_variable_bound(&tree, &inst).unwrap(),
            "seed {seed}: {tree} vs {optimized}"
        );
    }
}
