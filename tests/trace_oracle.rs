//! Trace oracle: the instrumented executor must be a pure observer.
//!
//! The traced recursion in `spanner_algebra::exec` mirrors the untraced
//! one; these tests hold it to that mirror across the whole surface —
//! identical results and errors on every program/document pair, a trace
//! shape that depends only on the plan (never on the document), mergeable
//! worker shards whose tallies agree with the corpus statistics, and
//! limit trips attributed to the operator that enforced the limit.

use document_spanners::prelude::*;
use spanner_algebra::ExecTrace;

/// SpannerQL programs covering every physical operator: fused scans,
/// projections, unions, hash joins, and the difference anti-join.
fn programs() -> Vec<&'static str> {
    vec![
        "/{x:a+}b/",
        "/.*{x:a+}b.*/",
        "let a = /{x:a+}b*/; project x (a);",
        "let a = /{x:a}b*/; let b = /a*{x:b}/; a union b;",
        "let a = /{x:a+}{y:b+}/; let b = /{x:a+}b*/; a join b;",
        "/.*{x:a+}.*/ minus /{x:aa}/",
        "let a = /{x:(a|b)+}/; let b = /{x:ab+}/; project x (a minus b);",
    ]
}

fn documents() -> Vec<&'static str> {
    vec!["", "a", "b", "ab", "aab", "abab", "bbaab", "aabbaabb"]
}

/// A clone with every `nanos` zeroed, so traces compare structurally.
fn strip_nanos(trace: &ExecTrace) -> ExecTrace {
    let mut t = trace.clone();
    t.nanos = 0;
    t.children = t.children.iter().map(strip_nanos).collect();
    t
}

/// The document-independent part of a trace: labels and tree structure.
fn shape(trace: &ExecTrace) -> Vec<(usize, String)> {
    fn walk(t: &ExecTrace, depth: usize, out: &mut Vec<(usize, String)>) {
        out.push((depth, t.label.clone()));
        for c in &t.children {
            walk(c, depth + 1, out);
        }
    }
    let mut out = Vec::new();
    walk(trace, 0, &mut out);
    out
}

#[test]
fn traced_evaluation_matches_untraced_on_every_pair() {
    for program in programs() {
        let query = PreparedQuery::prepare(program).unwrap();
        for text in documents() {
            let doc = Document::new(text);
            let plain = query.evaluate(&doc);
            let (traced, trace) = query.evaluate_traced(&doc);
            match (&plain, &traced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{program:?} on {text:?}");
                    assert_eq!(
                        trace.rows,
                        a.len() as u64,
                        "root row count must equal the result size: {program:?} on {text:?}"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "{program:?} on {text:?}")
                }
                _ => panic!(
                    "traced and untraced disagree on {program:?} / {text:?}: \
                     {plain:?} vs {traced:?}"
                ),
            }
        }
    }
}

#[test]
fn trace_shape_depends_only_on_the_plan() {
    for program in programs() {
        let query = PreparedQuery::prepare(program).unwrap();
        let skeleton = query.plan().physical().trace_skeleton();
        let expected = shape(&skeleton);
        // Every document's trace — match or miss, error or not — has the
        // skeleton's shape, so shards merge positionally.
        let mut merged = skeleton.clone();
        for text in documents() {
            let (_, trace) = query.evaluate_traced(&Document::new(text));
            assert_eq!(shape(&trace), expected, "{program:?} on {text:?}");
            merged.merge(&trace);
        }
        assert_eq!(shape(&merged), expected, "{program:?} after merging");
    }
}

#[test]
fn fixed_plan_trace_shape_is_stable() {
    // A regression pin for the trace consumers (`explain --analyze`, the
    // serve `trace` JSON): the exact skeleton of one representative plan.
    // `minus` always lowers to the physical anti-join, so this plan stays
    // a three-node tree instead of fusing into one static scan.
    let query = PreparedQuery::prepare("let a = /{x:a+}/; a minus /{x:aa}/;").unwrap();
    let skeleton = query.plan().physical().trace_skeleton();
    let labels: Vec<String> = shape(&skeleton)
        .into_iter()
        .map(|(depth, label)| {
            let op = label.split('(').next().unwrap().to_string();
            format!("{}{op}", "  ".repeat(depth))
        })
        .collect();
    assert_eq!(
        labels,
        ["Difference", "  CompiledScan", "  CompiledScan"],
        "the committed trace shape changed; update the consumers"
    );
}

#[test]
fn traced_corpus_tallies_agree_with_stats_for_every_thread_count() {
    let query = PreparedQuery::prepare("/.*{x:a+}b.*/").unwrap();
    let corpus = "aab\nzzz\nab\n\nbbb\naabab\nqqq aab\nb";
    let docs = split_lines(corpus);
    let plain = query.evaluate_corpus(&docs, 1).unwrap();

    let mut reference: Option<ExecTrace> = None;
    for threads in [1, 2, 4] {
        let (out, trace) = query.evaluate_corpus_traced(&docs, threads).unwrap();
        assert_eq!(out.results, plain.results, "{threads} threads");
        // Per-document outcome counters partition the corpus exactly as
        // the engine statistics do.
        let skipped = trace.counter("corpus_docs_skipped");
        let rejected = trace.counter("corpus_docs_rejected");
        let evaluated = trace.counter("corpus_docs_evaluated");
        assert_eq!(
            skipped + rejected + evaluated,
            out.stats.documents as u64,
            "{threads} threads"
        );
        assert_eq!(trace.total_rows(), out.stats.mappings as u64);
        // Modulo timing, the merged trace is identical no matter how the
        // corpus was sharded.
        let stripped = strip_nanos(&trace);
        match &reference {
            None => reference = Some(stripped),
            Some(r) => assert_eq!(r, &stripped, "{threads} threads"),
        }
    }
}

#[test]
fn limit_trips_are_attributed_to_the_enforcing_operator() {
    let options = RaOptions {
        max_signatures: 3,
        ..RaOptions::default()
    };
    let query =
        PreparedQuery::prepare_with_options("/.*{x:.*}.*/ minus /{x:zz}/", options).unwrap();
    let doc = Document::new("abcdefgh");
    let plain = query.evaluate(&doc).unwrap_err();
    let (traced, trace) = query.evaluate_traced(&doc);
    assert_eq!(traced.unwrap_err().to_string(), plain.to_string());
    // The trip is recorded somewhere in the tree (on the node whose limit
    // check fired), and exactly once for this single-error run.
    fn sum_trips(t: &ExecTrace) -> u64 {
        t.counter("limit_trips") + t.children.iter().map(sum_trips).sum::<u64>()
    }
    assert_eq!(sum_trips(&trace), 1, "{}", trace.render());
}
