//! Differential tests for incremental evaluation.
//!
//! Mutations (`append`/`update`/`delete`) and maintained query views (see
//! `spanner_store` and `spanner_corpus::QueryView`) are *optimizations*:
//! after any interleaving of mutations, (a) the mutated store must answer
//! exactly like a store rebuilt from scratch over the same documents —
//! same relations, same candidate sets, same persisted bytes — and (b)
//! the view-backed delta path must answer exactly like the full
//! unindexed evaluation, bit-identical in corpus order, for every thread
//! count and view budget. This suite pins both down with 100 seeded
//! random plans and mutation scripts over corpora that mix empty
//! documents, multi-byte UTF-8, and planted literals.

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_workloads::{random_mutations, random_ra_tree, RandomRaConfig};

fn cfg(seed: u64) -> RandomRaConfig {
    RandomRaConfig {
        depth: 2 + (seed % 2) as usize,
        leaves: 2 + (seed % 3) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

/// A small mixed corpus: empty documents, short fixed strings, random
/// text, multi-byte UTF-8 lines, and a planted rare literal so selective
/// plans have something to prune toward.
fn corpus(seed: u64) -> Vec<Document> {
    let mut docs: Vec<Document> = [
        "",
        "a",
        "ab",
        "bca",
        "abab",
        "",
        "β-reduction over αβγ",
        "naïve café décor",
        "δδδ",
        "aβb",
    ]
    .iter()
    .map(|t| Document::new(*t))
    .collect();
    for i in 0..8u64 {
        docs.push(workloads::random_text(
            16 + (i as usize) * 3,
            b"abc",
            seed.wrapping_mul(31).wrapping_add(i),
        ));
    }
    docs.push(Document::new("prefix needle suffix"));
    docs.push(Document::new("aaneedlebb"));
    docs
}

/// Saves both stores and compares the files byte for byte.
fn assert_same_bytes(mutated: &Store, rebuilt: &Store, seed: u64) {
    let dir = std::env::temp_dir();
    let a = dir.join(format!("incr-oracle-{}-{seed}-mutated", std::process::id()));
    let b = dir.join(format!("incr-oracle-{}-{seed}-rebuilt", std::process::id()));
    mutated.save(&a).unwrap();
    rebuilt.save(&b).unwrap();
    let same = std::fs::read(&a).unwrap() == std::fs::read(&b).unwrap();
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert!(
        same,
        "seed {seed}: the mutated store persists different bytes than a scratch rebuild"
    );
}

/// 100 random (plan, mutation script) pairs: after the script, the
/// mutated store equals a scratch rebuild, and the view-backed delta
/// path equals the full evaluation — warm, cold (budget 0), and on a
/// repeat query — at 1 and 3 threads.
#[test]
fn mutated_store_and_views_match_scratch_rebuild_on_100_seeds() {
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed);
        let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
        let docs = corpus(seed);
        let mut store = Store::build(docs.clone()).unwrap();

        // Warm a view on the pre-mutation corpus so the post-mutation
        // query exercises genuine hits, invalidations, and misses.
        let mut warm_view = QueryView::unbounded();
        store.query_view(&engine, &mut warm_view, 1).unwrap();

        for m in random_mutations(docs.len(), 30, seed) {
            store.apply(&m).unwrap();
        }

        // (a) The mutated store is indistinguishable from a rebuild:
        // same answers, same candidate pruning, same persisted bytes.
        let rebuilt = Store::build(store.documents().to_vec()).unwrap();
        assert_eq!(store.len(), rebuilt.len(), "seed {seed}");
        assert_eq!(store.doc_hashes(), rebuilt.doc_hashes(), "seed {seed}");
        if seed % 10 == 0 {
            assert_same_bytes(&store, &rebuilt, seed);
        }

        for threads in [1usize, 3] {
            let mutated_q = store.query(&engine, threads).unwrap();
            let rebuilt_q = rebuilt.query(&engine, threads).unwrap();
            assert_eq!(
                mutated_q.output.results, rebuilt_q.output.results,
                "seed {seed}, {threads} threads: {tree}"
            );
            assert_eq!(
                mutated_q.candidates, rebuilt_q.candidates,
                "seed {seed}, {threads} threads: candidate sets diverged"
            );

            // (b) The delta path answers exactly like the full pass.
            let full = engine
                .evaluate_with_threads(store.documents(), threads)
                .unwrap();
            let warm = store.query_view(&engine, &mut warm_view, threads).unwrap();
            assert_eq!(
                warm.output.results, full.results,
                "seed {seed}, {threads} threads (warm view): {tree}"
            );
            assert_eq!(
                warm.view_hits + warm.delta_docs,
                store.len(),
                "seed {seed}: every document is either a hit or delta"
            );

            // Budget 0 never retains anything: always the cold path, same
            // answer.
            let mut cold_view = QueryView::new(0);
            let cold = store.query_view(&engine, &mut cold_view, threads).unwrap();
            assert_eq!(
                cold.output.results, full.results,
                "seed {seed}, {threads} threads (cold view): {tree}"
            );
            assert_eq!(cold.view_hits, 0, "seed {seed}: budget 0 cannot hit");

            // A repeat on the warm view is served without re-evaluating
            // anything, still bit-identical.
            let again = store.query_view(&engine, &mut warm_view, threads).unwrap();
            assert_eq!(again.delta_docs, 0, "seed {seed}: unchanged corpus");
            assert_eq!(again.output.results, full.results, "seed {seed}");
        }
    }
}

/// Journal round trip: recording a script while applying it directly,
/// then replaying the journal from disk onto a fresh copy of the base
/// corpus, reproduces the directly-mutated store exactly.
#[test]
fn journal_replay_reproduces_the_mutated_store() {
    for seed in [1u64, 7, 23, 58] {
        let docs = corpus(seed);
        let path =
            std::env::temp_dir().join(format!("incr-oracle-journal-{}-{seed}", std::process::id()));
        std::fs::remove_file(&path).ok();

        let mut direct = Store::build(docs.clone()).unwrap();
        let mut journal = Journal::append(&path).unwrap();
        for m in random_mutations(docs.len(), 40, seed) {
            journal.record(&m).unwrap();
            direct.apply(&m).unwrap();
        }

        let (script, end) = Journal::read_from(&path, 0).unwrap();
        assert_eq!(end, std::fs::metadata(&path).unwrap().len());
        let mut replayed = Store::build(docs).unwrap();
        for m in &script {
            replayed.apply(m).unwrap();
        }
        assert_eq!(replayed.documents(), direct.documents(), "seed {seed}");
        assert_eq!(replayed.doc_hashes(), direct.doc_hashes(), "seed {seed}");
        assert_eq!(replayed.generation(), direct.generation(), "seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}
