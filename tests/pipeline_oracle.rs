//! Cross-crate integration tests: every compiled evaluation pipeline must
//! agree with the materialized reference semantics.

use document_spanners::prelude::*;
use spanner_algebra::{
    difference_adhoc_eval, evaluate_ra_materialized, mapping_set_to_vsa, DifferenceOptions,
};
use spanner_core::MappingSet;
use spanner_rgx::to_disjunctive_functional;
use spanner_vset::{assemble_disjunction, interpret, join_disjunctive_functional};

/// A pool of schemaless extractors exercising optional fields, shared
/// variables, classes, stars and unions.
fn patterns() -> Vec<&'static str> {
    vec![
        r"{x:a*}b",
        r"({x:a})?{y:b+}",
        r".*{x:a+}.*",
        r"{x:a}|{y:b}",
        r"({first:\l+} )?{last:\l+}( {phone:\d+})?",
        r"{x:(a|b)*}c?",
        r"(a|b)*{x:ab}(a|b)*",
        r"{x:a?}{y:b?}{z:c?}",
    ]
}

fn documents() -> Vec<&'static str> {
    vec![
        "",
        "a",
        "b",
        "ab",
        "ba",
        "aab",
        "abc",
        "bob smith 42",
        "abab",
    ]
}

#[test]
fn compile_enumerate_matches_reference_eval() {
    for pattern in patterns() {
        let alpha = parse(pattern).unwrap();
        let vsa = compile(&alpha);
        for text in documents() {
            let doc = Document::new(text);
            assert_eq!(
                evaluate(&vsa, &doc).unwrap(),
                reference_eval(&alpha, &doc),
                "pattern {pattern:?} on {text:?}"
            );
        }
    }
}

#[test]
fn join_compilation_matches_materialized_join() {
    let pairs = [
        (r"{x:a+}b*", r"{x:a*}b+"),
        (r"({x:a})?{y:b+}", r"{x:a}.*|.*{y:b}"),
        (r".*{x:\d+}.*", r".*{x:\d\d}.*{y:\l}.*"),
        (r"{x:a*}{y:b*}", r"{z:a*b*}"),
    ];
    for (p1, p2) in pairs {
        let a1 = compile(&parse(p1).unwrap());
        let a2 = compile(&parse(p2).unwrap());
        let joined = join(&a1, &a2).unwrap();
        for text in ["", "ab", "aab", "12 x", "abb"] {
            let doc = Document::new(text);
            let expected = evaluate(&a1, &doc)
                .unwrap()
                .join(&evaluate(&a2, &doc).unwrap());
            assert_eq!(
                evaluate(&joined, &doc).unwrap(),
                expected,
                "{p1:?} ⋈ {p2:?} on {text:?}"
            );
        }
    }
}

#[test]
fn difference_algorithms_agree_with_each_other_and_the_oracle() {
    let pairs = [
        (r"({x:a})?{y:b+}", r"{x:a}b*"),
        (r".*{mail:\l+@\l+\.\l+}.*", r".*{mail:\l+@\l+\.uk}.*"),
        (r"{x:a*}b", r"{y:a}.*"),
        (r"{x:\d}{y:\d}", r"{x:1}{y:\d}|{x:\d}{y:2}"),
    ];
    let opts = DifferenceOptions::default();
    for (p1, p2) in pairs {
        let a1 = compile(&parse(p1).unwrap());
        let a2 = compile(&parse(p2).unwrap());
        for text in ["", "b", "ab", "abb", "a@b.uk c@d.ru ", "12", "19"] {
            let doc = Document::new(text);
            let oracle = evaluate(&a1, &doc)
                .unwrap()
                .difference(&evaluate(&a2, &doc).unwrap());
            assert_eq!(
                difference_filter(&a1, &a2, &doc).unwrap(),
                oracle,
                "filter: {p1:?} \\ {p2:?} on {text:?}"
            );
            assert_eq!(
                difference_adhoc_eval(&a1, &a2, &doc, opts).unwrap(),
                oracle,
                "lemma 4.2: {p1:?} \\ {p2:?} on {text:?}"
            );
            assert_eq!(
                difference_product_eval(&a1, &a2, &doc, opts).unwrap(),
                oracle,
                "theorem 4.8: {p1:?} \\ {p2:?} on {text:?}"
            );
        }
    }
}

#[test]
fn disjunctive_functional_rewrite_and_join_round_trip() {
    // Proposition 3.9 + Proposition 3.12 together: rewrite two sequential
    // formulas into disjunctive functional form, join them pairwise, and
    // compare against the materialized join of the originals.
    let p1 = r"({x:a})?{y:b}";
    let p2 = r"{x:a}{y:b}|{y:b}";
    let alpha1 = parse(p1).unwrap();
    let alpha2 = parse(p2).unwrap();
    let d1: Vec<_> = to_disjunctive_functional(&alpha1, 1 << 10)
        .unwrap()
        .iter()
        .map(compile)
        .collect();
    let d2: Vec<_> = to_disjunctive_functional(&alpha2, 1 << 10)
        .unwrap()
        .iter()
        .map(compile)
        .collect();
    let joined = assemble_disjunction(&join_disjunctive_functional(&d1, &d2).unwrap());
    for text in ["b", "ab", "ba", ""] {
        let doc = Document::new(text);
        let expected = reference_eval(&alpha1, &doc).join(&reference_eval(&alpha2, &doc));
        assert_eq!(interpret(&joined, &doc), expected, "on {text:?}");
    }
}

#[test]
fn ra_tree_pipeline_matches_materialized_evaluation() {
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let inst = Instantiation::new()
        .with(
            0,
            parse(r"(.*\n)?{student:\u\l+} m:{mail:\l+}\n.*").unwrap(),
        )
        .with(
            1,
            parse(r"(.*\n)?{student:\u\l+} .*p:{phone:\d+}\n.*").unwrap(),
        )
        .with(
            2,
            parse(r"(.*\n)?{student:\u\l+} .*r:{rec:\l+}\n.*").unwrap(),
        );
    let docs = [
        "Bob m:b p:1\nAnn m:a p:2 r:good\n",
        "Bob m:b p:1 r:ok\n",
        "Cid m:c\nDee m:d p:9\n",
    ];
    for text in docs {
        let doc = Document::new(text);
        assert_eq!(
            evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap(),
            evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
            "on {text:?}"
        );
    }
}

#[test]
fn adhoc_relation_compilation_round_trips_through_enumeration() {
    let doc = Document::new("xyz");
    let alpha = parse(r".*{a:\l}.*{b:\l}.*").unwrap();
    let relation = reference_eval(&alpha, &doc);
    let vsa = mapping_set_to_vsa(&relation, &doc).unwrap();
    assert_eq!(evaluate(&vsa, &doc).unwrap(), relation);
    assert_eq!(
        evaluate(&vsa, &doc).unwrap(),
        MappingSet::from_mappings(relation.iter().cloned())
    );
}

#[test]
fn figure_1_extraction_matches_the_paper_table() {
    // Example 2.1: the three mappings µ1, µ2, µ3 (modulo exact positions,
    // which differ because our document uses '\n' instead of '←֓').
    let doc = document_spanners::workloads::students_figure_1();
    let info = compile(&document_spanners::workloads::student_info_extractor().unwrap());
    let result = evaluate(&info, &doc).unwrap();
    assert_eq!(result.len(), 3, "{result:?}");
    let by_last: Vec<(String, bool, bool)> = result
        .iter()
        .map(|m| {
            (
                doc.slice(m.get(&"last".into()).unwrap()).to_string(),
                m.contains(&"first".into()),
                m.contains(&"phone".into()),
            )
        })
        .collect();
    // µ1: Raskolnikov with a first name, no phone.
    assert!(by_last.contains(&("Raskolnikov".to_string(), true, false)));
    // µ2: Zosimov without a first name, with a phone.
    assert!(by_last.contains(&("Zosimov".to_string(), false, true)));
    // µ3: Luzhin with both.
    assert!(by_last.contains(&("Luzhin".to_string(), true, true)));
}
