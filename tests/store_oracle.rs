//! Differential tests for the trigram-indexed store.
//!
//! The store's literal pruning (see `spanner_store`) is an *optimization*:
//! for any compiled plan, querying through [`Store::query`] must produce
//! results bit-identical — relations, corpus order, match counts — to the
//! unindexed [`CorpusEngine::evaluate_with_threads`] path. This suite pins
//! that down with 100 seeded random plans over corpora that mix empty
//! documents, multi-byte UTF-8 content, and planted literals, plus the
//! three query regimes the index has to get right: selective (few
//! candidates), non-selective (most documents are candidates), and
//! zero-literal (no usable literal — the full-scan fallback must engage).

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_workloads::{random_ra_tree, RandomRaConfig};

fn cfg(seed: u64) -> RandomRaConfig {
    RandomRaConfig {
        depth: 2 + (seed % 2) as usize,
        leaves: 2 + (seed % 3) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

/// A small mixed corpus: empty documents, short fixed strings, random
/// text, multi-byte UTF-8 lines (Greek, combining marks), and a planted
/// rare literal so selective plans have something to prune toward.
fn corpus(seed: u64) -> Vec<Document> {
    let mut docs: Vec<Document> = [
        "",
        "a",
        "ab",
        "bca",
        "abab",
        "",
        "β-reduction over αβγ",
        "naïve café décor",
        "δδδ",
        "aβb",
    ]
    .iter()
    .map(|t| Document::new(*t))
    .collect();
    for i in 0..8u64 {
        docs.push(workloads::random_text(
            16 + (i as usize) * 3,
            b"abc",
            seed.wrapping_mul(31).wrapping_add(i),
        ));
    }
    docs.push(Document::new("prefix needle suffix"));
    docs.push(Document::new("aaneedlebb"));
    docs
}

/// 100 random plans: the indexed path answers exactly what the unindexed
/// corpus engine answers, document for document, and every document the
/// index prunes is accounted as skipped.
#[test]
fn indexed_store_is_invisible_on_100_random_plans() {
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed);
        let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
        let docs = corpus(seed);
        let store = Store::build(docs.clone()).unwrap();
        let threads = 1 + (seed % 4) as usize;

        let indexed = store.query(&engine, threads).unwrap();
        let full = engine.evaluate_with_threads(&docs, threads).unwrap();
        assert_eq!(indexed.output.results, full.results, "seed {seed}: {tree}");
        assert_eq!(
            indexed.output.stats.matched_documents, full.stats.matched_documents,
            "seed {seed}: {tree}"
        );
        assert_eq!(
            indexed.output.stats.documents,
            docs.len(),
            "seed {seed}: the indexed result must cover the whole corpus"
        );
        if let Some(candidates) = indexed.candidates {
            // Everything outside the candidate set is skipped unread.
            assert!(
                indexed.output.stats.docs_skipped >= docs.len() - candidates,
                "seed {seed}: {:?}",
                indexed.output.stats
            );
        }
    }
}

/// The three selectivity regimes, explicitly: a selective plan prunes to a
/// handful of candidates, a non-selective plan keeps most of the corpus,
/// and a literal-free plan falls back to the full scan — all bit-identical
/// to the unindexed path.
#[test]
fn selectivity_regimes_agree_with_the_unindexed_path() {
    let mut docs: Vec<Document> = (0..200)
        .map(|i| {
            if i % 40 == 0 {
                Document::new(format!("entry {i}: needle βeta"))
            } else {
                Document::new(format!("entry {i}: common αlpha"))
            }
        })
        .collect();
    docs.push(Document::new(""));
    docs.push(Document::new(""));
    let store = Store::build(docs.clone()).unwrap();

    for (pattern, expect_selective) in [
        // Selective: "needle" appears in 5 of 202 documents.
        (".*needle{x: .*}", Some(true)),
        // Non-selective: "entry" appears in 200 of 202.
        (".*entry{x: .*}", Some(false)),
        // Zero-literal: no singleton-class factor of trigram length.
        ("{x:[ne]+}", None),
    ] {
        let inst = Instantiation::new().with(0, parse(pattern).unwrap());
        let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap();
        let indexed = store.query(&engine, 3).unwrap();
        let full = engine.evaluate_with_threads(&docs, 3).unwrap();
        assert_eq!(indexed.output.results, full.results, "{pattern}");
        match expect_selective {
            Some(true) => {
                assert_eq!(indexed.candidates, Some(5), "{pattern}");
                assert!(indexed.selectivity() < 0.05, "{pattern}");
                assert!(
                    indexed.output.stats.docs_skipped >= docs.len() - 5,
                    "{pattern}: {:?}",
                    indexed.output.stats
                );
            }
            Some(false) => {
                let candidates = indexed.candidates.expect(pattern);
                assert!(candidates >= 200, "{pattern}: {candidates}");
            }
            None => {
                assert_eq!(indexed.candidates, None, "{pattern}");
                assert_eq!(indexed.selectivity(), 1.0, "{pattern}");
            }
        }
    }
}

/// Persistence composes with the differential contract: a store saved and
/// loaded back answers exactly what the in-memory store answers, multi-byte
/// UTF-8 documents included.
#[test]
fn persisted_store_queries_agree_after_reload() {
    let docs = corpus(7);
    let store = Store::build(docs.clone()).unwrap();
    let path =
        std::env::temp_dir().join(format!("spanner-store-oracle-{}.seg", std::process::id()));
    store.save(&path).unwrap();
    let loaded = Store::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.documents(), store.documents());

    for pattern in [".*needle{x: .*}", "{x:a+}b", ".*β{x:.*}"] {
        let inst = Instantiation::new().with(0, parse(pattern).unwrap());
        let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap();
        let from_loaded = loaded.query(&engine, 2).unwrap();
        let from_memory = store.query(&engine, 2).unwrap();
        let full = engine.evaluate_with_threads(&docs, 2).unwrap();
        assert_eq!(from_loaded.output.results, full.results, "{pattern}");
        assert_eq!(from_memory.output.results, full.results, "{pattern}");
        assert_eq!(from_loaded.candidates, from_memory.candidates, "{pattern}");
    }
}
