//! Differential tests for the compiled evaluation engine.
//!
//! Random sequential vset-automata (seeded, reproducible) are evaluated both
//! through the production path — [`CompiledVsa`] + the polynomial-delay
//! enumerator — and through the brute-force configuration-space interpreter
//! `spanner_vset::interpret`, which materializes every run and serves as the
//! semantic oracle. The two must agree exactly, on direct evaluation as well
//! as through the join and difference operators.

use spanner_algebra::{difference_adhoc_eval, difference_product_eval, DifferenceOptions};
use spanner_core::{Document, MappingSet};
use spanner_enum::{evaluate, evaluate_compiled, Enumerator};
use spanner_vset::{interpret, join, CompiledVsa};
use spanner_workloads::{random_sequential_vsa, RandomVsaConfig};

/// Short documents over the generator's alphabet; the oracle is exponential,
/// so inputs must stay small.
const DOCS: [&str; 6] = ["", "a", "ab", "ba", "abab", "bbab"];

fn small_cfg(num_vars: usize) -> RandomVsaConfig {
    RandomVsaConfig {
        layers: 4,
        width: 2,
        num_vars,
        ..RandomVsaConfig::default()
    }
}

/// ~100 random automata: compiled enumeration agrees with the oracle, both
/// when compiling on the fly and when reusing a precompiled automaton.
#[test]
fn compiled_enumeration_agrees_with_interpreter() {
    for seed in 0..100u64 {
        let cfg = small_cfg(1 + (seed % 3) as usize);
        let vsa = random_sequential_vsa(cfg, seed);
        let compiled = CompiledVsa::compile(&vsa);
        for text in DOCS {
            let doc = Document::new(text);
            let oracle = interpret(&vsa, &doc);
            let on_the_fly = evaluate(&vsa, &doc).unwrap();
            let precompiled = evaluate_compiled(&compiled, &doc).unwrap();
            assert_eq!(on_the_fly, oracle, "seed {seed} on {text:?}: {vsa:?}");
            assert_eq!(precompiled, oracle, "seed {seed} on {text:?} (precompiled)");
        }
    }
}

/// The enumerator must yield every mapping exactly once.
#[test]
fn compiled_enumeration_is_duplicate_free() {
    for seed in 0..25u64 {
        let vsa = random_sequential_vsa(small_cfg(2), seed);
        let compiled = CompiledVsa::compile(&vsa);
        for text in DOCS {
            let doc = Document::new(text);
            let listed: Vec<_> = Enumerator::from_compiled(&compiled, &doc)
                .unwrap()
                .map(|m| m.unwrap())
                .collect();
            let set: MappingSet = listed.iter().cloned().collect();
            assert_eq!(listed.len(), set.len(), "seed {seed} on {text:?}");
        }
    }
}

/// Join of random automata: the compiled product evaluated through the
/// enumerator agrees with the materialized join of the oracle relations.
#[test]
fn compiled_join_agrees_with_oracle() {
    for seed in 0..25u64 {
        // Distinct variable prefixes on odd seeds (disjoint-domain joins),
        // shared on even seeds (synchronized joins).
        let cfg1 = small_cfg(1 + (seed % 2) as usize);
        let cfg2 = RandomVsaConfig {
            var_prefix: if seed % 2 == 0 { "v" } else { "w" },
            ..small_cfg(1)
        };
        let a1 = random_sequential_vsa(cfg1, seed);
        let a2 = random_sequential_vsa(cfg2, seed.wrapping_add(1000));
        let joined = join(&a1, &a2).unwrap();
        for text in DOCS {
            let doc = Document::new(text);
            let oracle = interpret(&a1, &doc).join(&interpret(&a2, &doc));
            let actual = evaluate(&joined, &doc).unwrap();
            assert_eq!(actual, oracle, "seed {seed} on {text:?}");
        }
    }
}

/// Difference of random automata: both the product and the ad-hoc
/// compilation agree with the oracle difference.
#[test]
fn compiled_difference_agrees_with_oracle() {
    let opts = DifferenceOptions::default();
    for seed in 0..25u64 {
        let a1 = random_sequential_vsa(small_cfg(1 + (seed % 2) as usize), seed);
        let a2 = random_sequential_vsa(small_cfg(1), seed.wrapping_add(500));
        for text in DOCS {
            let doc = Document::new(text);
            let oracle = interpret(&a1, &doc).difference(&interpret(&a2, &doc));
            let product = difference_product_eval(&a1, &a2, &doc, opts).unwrap();
            let adhoc = difference_adhoc_eval(&a1, &a2, &doc, opts).unwrap();
            assert_eq!(product, oracle, "seed {seed} on {text:?} (product)");
            assert_eq!(adhoc, oracle, "seed {seed} on {text:?} (ad-hoc)");
        }
    }
}
