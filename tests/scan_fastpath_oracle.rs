//! Differential tests for the scan-core fast path.
//!
//! The fast path (static prefilters + lazy-DFA boolean pre-pass, see
//! `spanner_vset::scan`) is an *optimization*: with
//! [`RaOptions::scan_fast_path`] on or off, every evaluation surface must
//! produce bit-identical results. This suite pins that down with 100
//! seeded random plans across single-document evaluation, streaming, and
//! the corpus engine — plus the two adversarial regimes the pre-pass
//! ladder has to get right: documents that carry every required byte
//! factor yet have no match (the boolean tier must catch what the literal
//! tier cannot), and automata whose subset construction exceeds the DFA
//! state budget (the NFA frontier fallback must still answer exactly).

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_algebra::PhysOp;
use spanner_workloads::{random_ra_tree, RandomRaConfig};

fn options(fast_path: bool) -> RaOptions {
    RaOptions {
        scan_fast_path: fast_path,
        ..RaOptions::default()
    }
}

/// Streams every mapping into a vector (order included — the fast path
/// may only short-circuit provably empty results, never reorder).
fn stream_all(plan: &CompiledPlan, doc: &Document) -> Vec<Mapping> {
    plan.stream(doc).unwrap().map(|m| m.unwrap()).collect()
}

fn cfg(seed: u64) -> RandomRaConfig {
    RandomRaConfig {
        depth: 2 + (seed % 2) as usize,
        leaves: 2 + (seed % 3) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

/// 100 random plans, three surfaces each: evaluation with the fast path on
/// is bit-identical to evaluation with it off.
#[test]
fn fast_path_is_invisible_on_100_random_plans() {
    for seed in 0..100u64 {
        let (tree, inst) = random_ra_tree(cfg(seed), seed);
        let on = CompiledPlan::compile(&tree, &inst, options(true)).unwrap();
        let off = CompiledPlan::compile(&tree, &inst, options(false)).unwrap();

        let mut docs: Vec<Document> = ["", "a", "ab", "bca", "abab", "bbbb", "cacb"]
            .iter()
            .map(|t| Document::new(*t))
            .collect();
        docs.push(workloads::random_text(24, b"ab", seed));
        docs.push(workloads::random_text(31, b"abc", seed.wrapping_add(1)));

        for doc in &docs {
            assert_eq!(
                on.evaluate(doc).unwrap(),
                off.evaluate(doc).unwrap(),
                "seed {seed} evaluate on {:?}: {tree}",
                doc.text()
            );
            assert_eq!(
                stream_all(&on, doc),
                stream_all(&off, doc),
                "seed {seed} stream on {:?}: {tree}",
                doc.text()
            );
        }

        // The corpus surface, sharded: same relations, and the fast-path
        // counters must stay zero when the fast path is disabled.
        let engine_on = CorpusEngine::from_plan(on);
        let engine_off = CorpusEngine::from_plan(off);
        let out_on = engine_on.evaluate_with_threads(&docs, 2).unwrap();
        let out_off = engine_off.evaluate_with_threads(&docs, 2).unwrap();
        assert_eq!(
            out_on.results, out_off.results,
            "seed {seed} corpus: {tree}"
        );
        assert_eq!(out_off.stats.docs_skipped, 0, "seed {seed}");
        assert_eq!(out_off.stats.docs_rejected, 0, "seed {seed}");
    }
}

/// Documents that pass every static prefilter (all required factors
/// present, length and prefix fine) but have no match: the boolean tier
/// must reject them, and the answer must match the slow path exactly.
#[test]
fn adversarial_factor_present_documents_agree() {
    // `.*{x:a+}@.*` requires an 'a' and an '@'; `@a` has both, in the
    // wrong order.
    let inst = Instantiation::new().with(0, parse(".*{x:a+}@.*").unwrap());
    let tree = RaTree::leaf(0);
    let on = CompiledPlan::compile(&tree, &inst, options(true)).unwrap();
    let off = CompiledPlan::compile(&tree, &inst, options(false)).unwrap();
    let docs: Vec<Document> = [
        "@a", "@aaa", "aaa@", "a@", "@", "aa", "b@ab", "@b@b@a", "xxa@yy",
    ]
    .iter()
    .map(|t| Document::new(*t))
    .collect();
    for doc in &docs {
        assert_eq!(
            on.evaluate(doc).unwrap(),
            off.evaluate(doc).unwrap(),
            "on {:?}",
            doc.text()
        );
        assert_eq!(
            stream_all(&on, doc),
            stream_all(&off, doc),
            "{:?}",
            doc.text()
        );
    }
    let out = CorpusEngine::from_plan(on)
        .evaluate_with_threads(&docs, 3)
        .unwrap();
    // "@a" and "@aaa" survive the factor filter and are killed by the
    // boolean pre-pass; "aa" (no '@') is skipped without it.
    assert!(out.stats.docs_rejected >= 2, "{:?}", out.stats);
    assert!(out.stats.docs_skipped >= 1, "{:?}", out.stats);
}

/// `(a|b)* a (a|b)^17` needs ≥ 2^17 DFA states — past the cell budget, so
/// the pre-pass runs on the NFA frontier fallback. Same contract: the
/// fast path stays invisible.
#[test]
fn dfa_budget_exhaustion_fallback_agrees() {
    let pattern = format!("(a|b)*{{x:a}}{}", "(a|b)".repeat(17));
    let inst = Instantiation::new().with(0, parse(&pattern).unwrap());
    let tree = RaTree::leaf(0);
    let on = CompiledPlan::compile(&tree, &inst, options(true)).unwrap();
    let off = CompiledPlan::compile(&tree, &inst, options(false)).unwrap();

    // The compiled scan really is past the budget (otherwise this test
    // exercises the wrong tier).
    let PhysOp::CompiledScan { compiled, .. } = on.physical().root() else {
        panic!("a single-leaf plan lowers to one compiled scan");
    };
    assert_eq!(
        compiled.boolean_dfa_states(),
        None,
        "subset construction must exceed the budget"
    );

    let mut docs: Vec<Document> = vec![
        Document::new("a".repeat(18)),
        Document::new("b".repeat(18)),
        Document::new(format!("bba{}", "b".repeat(17))),
        Document::new("ab".repeat(40)),
        Document::new(""),
    ];
    for seed in 0..20u64 {
        docs.push(workloads::random_text(60, b"ab", seed.wrapping_add(500)));
    }
    for doc in &docs {
        assert_eq!(
            on.evaluate(doc).unwrap(),
            off.evaluate(doc).unwrap(),
            "on {:?}",
            doc.text()
        );
        assert_eq!(
            stream_all(&on, doc),
            stream_all(&off, doc),
            "{:?}",
            doc.text()
        );
    }
}
