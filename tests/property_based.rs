//! Property-based tests over random regex formulas, automata and documents.
//!
//! These tests generate small random sequential regex formulas (through a
//! proptest strategy) and random documents, and check that every compiled
//! pipeline agrees with the reference semantics and that the algebraic
//! compilations commute with materialized evaluation.

use document_spanners::prelude::*;
use proptest::prelude::*;
use spanner_algebra::{
    difference_adhoc_eval, evaluate_ra_materialized, shared_variable_bound, tree_vars,
    DifferenceOptions,
};
use spanner_core::MappingSet;
use spanner_rgx::{is_sequential, to_disjunctive_functional};
use spanner_vset::{interpret, is_sequential as vsa_sequential, make_semi_functional};
use spanner_workloads::{random_ra_tree, random_sequential_rgx, RandomRaConfig};

/// A strategy for small sequential regex formulas over {a, b} with capture
/// variables drawn from {x, y, z}.
fn rgx_strategy(max_depth: u32) -> impl Strategy<Value = Rgx> {
    let leaf = prop_oneof![
        Just(Rgx::Epsilon),
        Just(Rgx::symbol(b'a')),
        Just(Rgx::symbol(b'b')),
        Just(Rgx::star(Rgx::symbol(b'a'))),
        Just(Rgx::any_symbol()),
    ];
    leaf.prop_recursive(max_depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rgx::concat([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rgx::union([a, b])),
            inner.clone().prop_map(|a| Rgx::star(strip_vars(a))),
            (prop_oneof![Just("x"), Just("y"), Just("z")], inner)
                .prop_map(|(v, a)| Rgx::capture(v, strip_var(a, v))),
        ]
    })
}

/// Removes every capture (used under stars).
fn strip_vars(r: Rgx) -> Rgx {
    match r {
        Rgx::Capture(_, inner) => strip_vars(*inner),
        Rgx::Concat(parts) => Rgx::concat(parts.into_iter().map(strip_vars)),
        Rgx::Union(parts) => Rgx::union(parts.into_iter().map(strip_vars)),
        Rgx::Star(inner) => Rgx::star(strip_vars(*inner)),
        other => other,
    }
}

/// Removes captures of one specific variable (to keep capture nesting
/// sequential).
fn strip_var(r: Rgx, name: &str) -> Rgx {
    match r {
        Rgx::Capture(v, inner) => {
            let inner = strip_var(*inner, name);
            if v.name() == name {
                inner
            } else {
                Rgx::capture(v, inner)
            }
        }
        Rgx::Concat(parts) => Rgx::concat(parts.into_iter().map(|p| strip_var(p, name))),
        Rgx::Union(parts) => Rgx::union(parts.into_iter().map(|p| strip_var(p, name))),
        Rgx::Star(inner) => Rgx::star(strip_var(*inner, name)),
        other => other,
    }
}

/// Documents over {a, b} of length at most 5 (the reference evaluator is
/// exponential, so inputs must stay small).
fn doc_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..=5)
        .prop_map(|chars| chars.into_iter().collect())
}

/// Documents over {a, b, c} — the alphabet of the workload formula
/// generator (`random_sequential_rgx`).
fn abc_doc_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('c')], 0..=5)
        .prop_map(|chars| chars.into_iter().collect())
}

/// A uniform 24-bit seed (the compat proptest has no integer-range
/// strategy, so the seed is assembled from coin flips).
fn seed_strategy() -> impl Strategy<Value = u64> {
    proptest::collection::vec(prop_oneof![Just(false), Just(true)], 24..=24)
        .prop_map(|bits| bits.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64))
}

/// The random-plan shape used by the planner properties.
fn plan_cfg(seed: u64) -> RandomRaConfig {
    RandomRaConfig {
        depth: 2 + (seed % 2) as usize,
        leaves: 2 + (seed % 3) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(3),
    }
}

/// Skips formulas that the generator may produce with duplicated variables
/// across concatenations (rare but possible); every property only applies to
/// sequential formulas.
fn assume_sequential(alpha: &Rgx) -> bool {
    is_sequential(alpha)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn enumeration_agrees_with_reference(alpha in rgx_strategy(3), text in doc_strategy()) {
        prop_assume!(assume_sequential(&alpha));
        let doc = Document::new(text);
        let vsa = compile(&alpha);
        let reference = reference_eval(&alpha, &doc);
        prop_assert_eq!(evaluate(&vsa, &doc).unwrap(), reference.clone());
        prop_assert_eq!(interpret(&vsa, &doc), reference);
    }

    #[test]
    fn enumeration_produces_no_duplicates(alpha in rgx_strategy(3), text in doc_strategy()) {
        prop_assume!(assume_sequential(&alpha));
        let doc = Document::new(text);
        let vsa = compile(&alpha);
        let listed: Vec<Mapping> = Enumerator::new(&vsa, &doc)
            .unwrap()
            .map(|m| m.unwrap())
            .collect();
        let set: MappingSet = listed.iter().cloned().collect();
        prop_assert_eq!(listed.len(), set.len());
    }

    #[test]
    fn semi_functional_transformation_preserves_semantics(
        alpha in rgx_strategy(3),
        text in doc_strategy()
    ) {
        prop_assume!(assume_sequential(&alpha));
        let doc = Document::new(text);
        let vsa = compile(&alpha);
        let vars = vsa.vars().clone();
        let sf = make_semi_functional(&vsa, &vars);
        prop_assert!(vsa_sequential(&sf.vsa));
        prop_assert_eq!(interpret(&sf.vsa, &doc), interpret(&vsa, &doc));
    }

    #[test]
    fn disjunctive_functional_rewrite_preserves_semantics(
        alpha in rgx_strategy(3),
        text in doc_strategy()
    ) {
        prop_assume!(assume_sequential(&alpha));
        let doc = Document::new(text);
        if let Ok(disjuncts) = to_disjunctive_functional(&alpha, 1 << 12) {
            let rewritten = Rgx::Union(disjuncts);
            prop_assert_eq!(
                reference_eval(&rewritten, &doc),
                reference_eval(&alpha, &doc)
            );
        }
    }

    #[test]
    fn join_compilation_is_sound_and_complete(
        alpha1 in rgx_strategy(2),
        alpha2 in rgx_strategy(2),
        text in doc_strategy()
    ) {
        prop_assume!(assume_sequential(&alpha1) && assume_sequential(&alpha2));
        let doc = Document::new(text);
        let a1 = compile(&alpha1);
        let a2 = compile(&alpha2);
        let joined = join(&a1, &a2).unwrap();
        let expected = reference_eval(&alpha1, &doc).join(&reference_eval(&alpha2, &doc));
        prop_assert_eq!(evaluate(&joined, &doc).unwrap(), expected);
    }

    #[test]
    fn difference_constructions_agree(
        alpha1 in rgx_strategy(2),
        alpha2 in rgx_strategy(2),
        text in doc_strategy()
    ) {
        prop_assume!(assume_sequential(&alpha1) && assume_sequential(&alpha2));
        let doc = Document::new(text);
        let a1 = compile(&alpha1);
        let a2 = compile(&alpha2);
        let oracle = reference_eval(&alpha1, &doc).difference(&reference_eval(&alpha2, &doc));
        let opts = DifferenceOptions::default();
        prop_assert_eq!(difference_filter(&a1, &a2, &doc).unwrap(), oracle.clone());
        prop_assert_eq!(difference_product_eval(&a1, &a2, &doc, opts).unwrap(), oracle.clone());
        prop_assert_eq!(difference_adhoc_eval(&a1, &a2, &doc, opts).unwrap(), oracle);
    }

    #[test]
    fn projection_union_commute_with_compilation(
        alpha1 in rgx_strategy(2),
        alpha2 in rgx_strategy(2),
        text in doc_strategy()
    ) {
        prop_assume!(assume_sequential(&alpha1) && assume_sequential(&alpha2));
        let doc = Document::new(text);
        let a1 = compile(&alpha1);
        let a2 = compile(&alpha2);
        let keep = VarSet::from_iter(["x", "z"]);
        let expected_proj = reference_eval(&alpha1, &doc).project(&keep);
        prop_assert_eq!(evaluate(&a1.project(&keep), &doc).unwrap(), expected_proj);
        let expected_union = reference_eval(&alpha1, &doc).union(&reference_eval(&alpha2, &doc));
        prop_assert_eq!(evaluate(&a1.union(&a2), &doc).unwrap(), expected_union);
    }

    // ----- planner invariants (spanner_algebra::plan) -----

    #[test]
    fn planner_preserves_tree_vars(seed in seed_strategy()) {
        let (tree, inst) = random_ra_tree(plan_cfg(seed), seed);
        let optimized = optimize_ra(&tree, &inst).unwrap();
        prop_assert_eq!(
            tree_vars(&optimized, &inst).unwrap(),
            tree_vars(&tree, &inst).unwrap(),
            "{} vs {}", tree, optimized
        );
    }

    #[test]
    fn planner_never_increases_shared_variable_bound(seed in seed_strategy()) {
        let (tree, inst) = random_ra_tree(plan_cfg(seed), seed);
        let optimized = optimize_ra(&tree, &inst).unwrap();
        prop_assert!(
            shared_variable_bound(&optimized, &inst).unwrap()
                <= shared_variable_bound(&tree, &inst).unwrap(),
            "{} (bound {}) optimized to {} (bound {})",
            tree,
            shared_variable_bound(&tree, &inst).unwrap(),
            optimized,
            shared_variable_bound(&optimized, &inst).unwrap()
        );
    }

    #[test]
    fn planner_is_idempotent(seed in seed_strategy()) {
        let (tree, inst) = random_ra_tree(plan_cfg(seed), seed);
        let once = optimize_ra(&tree, &inst).unwrap();
        let twice = optimize_ra(&once, &inst).unwrap();
        prop_assert_eq!(&once, &twice, "optimizing twice diverged from {}", tree);
    }

    #[test]
    fn planner_preserves_semantics(seed in seed_strategy(), text in doc_strategy()) {
        let (tree, inst) = random_ra_tree(plan_cfg(seed), seed);
        let optimized = optimize_ra(&tree, &inst).unwrap();
        let doc = Document::new(text);
        prop_assert_eq!(
            evaluate_ra_materialized(&optimized, &inst, &doc).unwrap(),
            evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
            "{} vs {}", tree, optimized
        );
    }
    // `Rgx`'s `Display` output re-parses to an equivalent formula: the
    // concrete syntax and the printer stay in sync over the whole space of
    // workload-generated formulas (which the SpannerQL program generator
    // embeds verbatim in `/…/` literals). (A plain comment: the compat
    // `proptest!` macro does not accept doc attributes before `#[test]`.)
    #[test]
    fn rgx_display_round_trips_through_the_parser(
        seed in seed_strategy(),
        text in abc_doc_strategy()
    ) {
        let alpha = random_sequential_rgx(3, 2, seed);
        let printed = format!("{alpha}");
        let reparsed = parse(&printed);
        prop_assert!(
            reparsed.is_ok(),
            "Display output {:?} (seed {}) failed to re-parse: {:?}",
            printed, seed, reparsed.err()
        );
        let doc = Document::new(text);
        prop_assert_eq!(
            reference_eval(&reparsed.unwrap(), &doc),
            reference_eval(&alpha, &doc),
            "round trip changed semantics (seed {}): {:?}", seed, printed
        );
    }
}
