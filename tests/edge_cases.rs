//! Edge cases and failure injection across the public API.

use document_spanners::prelude::*;
use spanner_algebra::{
    difference_adhoc_eval, evaluate_ra_materialized, tree_vars, DifferenceOptions,
};
use spanner_enum::MAX_VARS;
use spanner_vset::JoinOptions;

#[test]
fn empty_document_everywhere() {
    let doc = Document::new("");
    // Extraction.
    assert_eq!(
        evaluate_rgx(&parse("{x:a*}").unwrap(), &doc).unwrap().len(),
        1
    );
    assert!(evaluate_rgx(&parse("{x:a+}").unwrap(), &doc)
        .unwrap()
        .is_empty());
    // Join.
    let a1 = compile(&parse("{x:a*}").unwrap());
    let a2 = compile(&parse("{x:()}|a").unwrap());
    let joined = join(&a1, &a2).unwrap();
    let result = evaluate(&joined, &doc).unwrap();
    assert_eq!(result.len(), 1);
    // Difference on the empty document: every pair of mappings is compatible
    // (all spans are [1,1⟩), so a nonempty right side empties the result.
    let opts = DifferenceOptions::default();
    assert!(difference_product_eval(&a1, &a2, &doc, opts)
        .unwrap()
        .is_empty());
    assert!(difference_adhoc_eval(&a1, &a2, &doc, opts)
        .unwrap()
        .is_empty());
}

#[test]
fn too_many_variables_is_a_clean_error() {
    // The enumerator's bitset representation supports MAX_VARS variables.
    let mut parts = Vec::new();
    for i in 0..=MAX_VARS {
        parts.push(format!("{{v{i:02}:a?}}"));
    }
    let alpha = parse(&parts.concat()).unwrap();
    let vsa = compile(&alpha);
    let doc = Document::new("aaa");
    let err = evaluate(&vsa, &doc).unwrap_err();
    assert!(matches!(err, SpannerError::LimitExceeded { .. }), "{err}");
}

#[test]
fn join_state_limit_is_reported() {
    let a1 = compile(&parse("({a:x})?({b:x})?({c:x})?({d:x})?x*").unwrap());
    let a2 = compile(&parse("({a:x})?({b:x})?({c:x})?({d:x})?x*").unwrap());
    let err =
        spanner_vset::join_with_options(&a1, &a2, JoinOptions { max_states: 10 }).unwrap_err();
    assert!(matches!(err, SpannerError::LimitExceeded { .. }));
}

#[test]
fn difference_limits_are_reported() {
    let a1 = compile(&parse(".*{x:.*}.*{y:.*}.*").unwrap());
    let a2 = compile(&parse(".*{x:.*}.*{y:.*}.*").unwrap());
    let doc = Document::new("abcdefghij");
    let tight = DifferenceOptions {
        max_states: 1_000_000,
        max_signatures: 3,
    };
    let err = difference_adhoc_eval(&a1, &a2, &doc, tight).unwrap_err();
    assert!(matches!(err, SpannerError::LimitExceeded { .. }));
}

#[test]
fn unicode_documents_are_handled_bytewise() {
    // Byte-level semantics: a multi-byte code point is several symbols.
    let doc = Document::new("héllo");
    assert_eq!(doc.len(), 6);
    let alpha = parse(r".*{x:\l+}.*").unwrap();
    let result = evaluate_rgx(&alpha, &doc).unwrap();
    // The ASCII runs "h" and "llo" (and their subruns) are extracted; slicing
    // any of the returned spans must not panic even around the multi-byte
    // character boundaries.
    assert!(!result.is_empty());
    for m in result.iter() {
        let span = m.get(&"x".into()).unwrap();
        assert!(
            doc.try_slice(span).is_some() || doc.text().as_bytes().get(span.as_range()).is_some()
        );
    }
}

#[test]
fn projection_to_unknown_variables_yields_boolean_spanner() {
    let a = compile(&parse("{x:a+}b").unwrap());
    let projected = a.project(&VarSet::from_iter(["nonexistent"]));
    let doc = Document::new("aab");
    let result = evaluate(&projected, &doc).unwrap();
    assert_eq!(result.len(), 1);
    assert!(result.iter().next().unwrap().is_empty());
}

#[test]
fn difference_with_empty_right_operand_is_identity() {
    let a1 = compile(&parse("({x:a})?b").unwrap());
    let empty = compile(&Rgx::Empty);
    let doc = Document::new("ab");
    let expected = evaluate(&a1, &doc).unwrap();
    let opts = DifferenceOptions::default();
    assert_eq!(
        difference_product_eval(&a1, &empty, &doc, opts).unwrap(),
        expected
    );
    assert_eq!(
        difference_adhoc_eval(&a1, &empty, &doc, opts).unwrap(),
        expected
    );
    assert_eq!(difference_filter(&a1, &empty, &doc).unwrap(), expected);
}

#[test]
fn self_difference_is_always_empty() {
    for pattern in ["{x:a*}b*", "({x:a})?{y:b?}", ".*"] {
        let a = compile(&parse(pattern).unwrap());
        for text in ["", "ab", "ba"] {
            let doc = Document::new(text);
            if evaluate(&a, &doc).unwrap().is_empty() {
                continue;
            }
            let opts = DifferenceOptions::default();
            assert!(
                difference_product_eval(&a, &a, &doc, opts)
                    .unwrap()
                    .is_empty(),
                "{pattern} on {text:?}"
            );
        }
    }
}

#[test]
fn planner_projection_to_empty_variable_set() {
    // π_∅ over a join: the planner pushes the (boolean) projection into the
    // operands but must keep the join variable alive through the join.
    let tree = RaTree::project(
        VarSet::new(),
        RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
    );
    let inst = Instantiation::new()
        .with(0, parse("{x:a+}{y:b*}").unwrap())
        .with(1, parse("{x:a+}{z:b?}b*").unwrap());
    let optimized = optimize_ra(&tree, &inst).unwrap();
    assert!(tree_vars(&optimized, &inst).unwrap().is_empty());
    for text in ["", "a", "ab", "abb", "ba"] {
        let doc = Document::new(text);
        let expected = evaluate_ra_materialized(&tree, &inst, &doc).unwrap();
        let actual = evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap();
        assert_eq!(actual, expected, "on {text:?}");
        // A boolean spanner yields either nothing or the single empty
        // mapping.
        assert!(actual.len() <= 1);
        assert!(actual.iter().all(|m| m.is_empty()));
    }
}

#[test]
fn planner_union_of_schema_disjoint_operands() {
    // {x} ∪ {y}: schemaless semantics keep both sides' mappings as-is; the
    // planner must not project either operand onto the other's schema.
    let tree = RaTree::project(
        VarSet::from_iter(["x", "y"]),
        RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
    );
    let inst = Instantiation::new()
        .with(0, parse("{x:a}b*").unwrap())
        .with(1, parse("a{y:b+}").unwrap());
    let optimized = optimize_ra(&tree, &inst).unwrap();
    assert_eq!(
        tree_vars(&optimized, &inst).unwrap(),
        VarSet::from_iter(["x", "y"])
    );
    for text in ["ab", "a", "abb", "b", ""] {
        let doc = Document::new(text);
        assert_eq!(
            evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap(),
            evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
            "on {text:?}"
        );
    }
}

/// The blocked rewrite: `π_Y(P1 \ P2)` must NOT become `π_Y(P1) \ π_Y(P2)`.
/// P1 binds the same `x` with two different `y`s and P2 subtracts only one
/// of the pairs: the sound plan keeps that `x` (one pair survives), while
/// the pushed-down plan would subtract `π_x(P2)` and lose it. The optimizer
/// must keep the projection above the difference.
#[test]
fn planner_does_not_push_projection_through_difference() {
    let tree = RaTree::project(
        VarSet::from_iter(["x"]),
        RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)),
    );
    // On "abb", P1 = {(x=[1,2⟩, y=[2,3⟩), (x=[1,2⟩, y=[3,4⟩)} and P2
    // removes exactly the first pair.
    let inst = Instantiation::new()
        .with(0, parse("{x:a}({y:b}b|b{y:b})").unwrap())
        .with(1, parse("{x:a}{y:b}b").unwrap());
    let optimized = optimize_ra(&tree, &inst).unwrap();
    assert!(
        matches!(&optimized, RaTree::Project(_, child) if matches!(child.as_ref(), RaTree::Difference(_, _))),
        "projection must stay above the difference, got {optimized}"
    );

    let doc = Document::new("abb");
    let expected = evaluate_ra_materialized(&tree, &inst, &doc).unwrap();
    assert_eq!(expected.len(), 1, "one pair must survive the difference");
    // The unsound pushed-down plan loses the surviving x:
    let unsound = evaluate_ra_materialized(
        &RaTree::difference(
            RaTree::project(VarSet::from_iter(["x"]), RaTree::leaf(0)),
            RaTree::project(VarSet::from_iter(["x"]), RaTree::leaf(1)),
        ),
        &inst,
        &doc,
    )
    .unwrap();
    assert_ne!(
        expected, unsound,
        "test vectors must actually distinguish the two plans"
    );
    assert_eq!(
        evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap(),
        expected
    );
}

// ---------------------------------------------------------------------------
// Physical operator executor edge cases.
// ---------------------------------------------------------------------------

/// Compiles both ways (optimizer on/off) and checks `evaluate` and `stream`
/// against the materialized oracle on every document.
fn check_executor(tree: &RaTree, inst: &Instantiation, texts: &[&str]) {
    for options in [RaOptions::default(), RaOptions::unoptimized()] {
        let plan = CompiledPlan::compile(tree, inst, options).unwrap();
        for text in texts {
            let doc = Document::new(*text);
            let oracle = evaluate_ra_materialized(tree, inst, &doc).unwrap();
            assert_eq!(
                plan.evaluate(&doc).unwrap(),
                oracle,
                "evaluate (optimize={}) on {text:?}: {tree}",
                options.optimize
            );
            let streamed: Vec<Mapping> = plan
                .stream(&doc)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            let as_set: MappingSet = streamed.iter().cloned().collect();
            assert_eq!(streamed.len(), as_set.len(), "duplicates on {text:?}");
            assert_eq!(
                as_set, oracle,
                "stream (optimize={}) on {text:?}: {tree}",
                options.optimize
            );
        }
    }
}

#[test]
fn executor_difference_with_schema_overlapping_operands() {
    // Operand schemas {x, y} and {y, z} overlap only on y: compatibility is
    // decided on the overlap, and survivors keep their private variables.
    let tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
    let inst = Instantiation::new()
        .with(0, parse("{x:a+}{y:b*}").unwrap())
        .with(1, parse("a*{y:b+}{z:a?}").unwrap());
    check_executor(&tree, &inst, &["ab", "abb", "a", "b", "aabba", ""]);
}

#[test]
fn executor_difference_with_empty_probe_side() {
    // The probe side matches nothing on these documents: the anti-join is
    // the identity and must not drop (or reorder into) anything.
    let tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
    let inst = Instantiation::new()
        .with(0, parse("{x:a+}b*").unwrap())
        .with(1, parse("{x:a}ccc").unwrap());
    check_executor(&tree, &inst, &["ab", "aab", "a", ""]);
    // An unsatisfiable probe automaton (empty language) behaves the same.
    let inst_empty = Instantiation::new()
        .with(0, parse("{x:a+}b*").unwrap())
        .with(1, parse("{x:[]}").unwrap());
    check_executor(&tree, &inst_empty, &["ab", "a", ""]);
}

#[test]
fn executor_projection_directly_over_difference() {
    // The projection cannot be pushed through the difference (unsound), so
    // the executor runs a Project operator over the anti-join — including
    // the dedup of mappings that collapse under the projection.
    let tree = RaTree::project(
        VarSet::from_iter(["x"]),
        RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)),
    );
    let inst = Instantiation::new()
        .with(0, parse("{x:a}({y:b}b|b{y:b})").unwrap())
        .with(1, parse("{x:a}{y:b}b").unwrap());
    check_executor(&tree, &inst, &["abb", "ab", "abbb", ""]);
}

#[test]
fn executor_stream_equals_evaluate_on_dynamic_plans() {
    // A join above a difference: the deepest dynamic shape — the join
    // streams its probe side, the difference is an anti-join below it.
    let tree = RaTree::join(
        RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)),
        RaTree::leaf(2),
    );
    let inst = Instantiation::new()
        .with(0, parse("{x:a+}{y:b*}").unwrap())
        .with(1, parse("{x:aa}b*").unwrap())
        .with(2, parse("{x:a+}{z:b?}b*").unwrap());
    check_executor(&tree, &inst, &["ab", "aab", "abb", "a", ""]);
    // And a union of differences under a projection (dedup at every level).
    let union_tree = RaTree::project(
        VarSet::from_iter(["x"]),
        RaTree::union(
            RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        ),
    );
    check_executor(&union_tree, &inst, &["ab", "aab", "abb", ""]);
}

#[test]
fn enumerator_is_fused_after_exhaustion() {
    let vsa = compile(&parse("{x:a}").unwrap());
    let doc = Document::new("a");
    let mut e = Enumerator::new(&vsa, &doc).unwrap();
    assert!(e.next().is_some());
    assert!(e.next().is_none());
    assert!(e.next().is_none());
}

#[test]
fn long_document_smoke_test() {
    // A realistic extractor over a ~20 KiB document; checks that nothing
    // quadratic-in-the-answer-count sneaks into the enumeration path.
    let doc = document_spanners::workloads::access_log(300, 5);
    assert!(doc.len() > 15_000);
    let vsa = compile(&document_spanners::workloads::log_error_extractor().unwrap());
    let count = count_mappings(&vsa, &doc, usize::MAX).unwrap();
    assert!(count > 0);
}
