//! Differential tests for the shard router.
//!
//! A router front end over N backend daemons is an *deployment shape*,
//! not a semantics change: for any program, corpus, shard count, and
//! optimizer setting, `query_corpus` through the router must produce a
//! response **byte-identical** to the same request against a single
//! daemon holding the whole corpus — same results in corpus order, same
//! aggregate stats, same selectivity rendering — and both must agree
//! with in-process evaluation. This suite pins that down with 100 seeded
//! random SpannerQL programs over mixed corpora (empty documents,
//! multi-byte UTF-8, planted literals), shard counts 1/2/3, the planner
//! on and off, and a resident-store mutation interleave
//! (append/update/delete between queries, replayed on a scratch corpus).

use document_spanners::prelude::*;
use document_spanners::workloads;
use spanner_serve::protocol::mappings_to_json;
use spanner_serve::{Client, Json, RouterOptions, ServeOptions, Server};
use spanner_workloads::{random_ql_program, RandomQlConfig, RandomQlProgram};
use std::net::SocketAddr;
use std::thread::JoinHandle;

type Handle = JoinHandle<std::io::Result<()>>;

fn cfg(seed: u64) -> RandomQlConfig {
    RandomQlConfig {
        bindings: 2 + (seed % 2) as usize,
        depth: 2 + (seed % 2) as usize,
        vars_per_leaf: 2,
        allow_difference: !seed.is_multiple_of(4),
    }
}

fn serve_options(optimize: bool) -> ServeOptions {
    ServeOptions {
        threads: 2,
        ra_options: if optimize {
            RaOptions::default()
        } else {
            RaOptions::unoptimized()
        },
        ..ServeOptions::default()
    }
}

/// One single daemon plus a router over `shards` backend daemons, all on
/// ephemeral ports, all with the same options.
struct Cluster {
    single: Client,
    router: Client,
    /// Clients kept to shut the backends down; handles joined on drop of
    /// the test (explicitly, via [`Cluster::shutdown`]).
    backends: Vec<Client>,
    handles: Vec<Handle>,
}

impl Cluster {
    fn start(shards: usize, optimize: bool) -> Cluster {
        let mut handles = Vec::new();
        let mut backend_addrs: Vec<SocketAddr> = Vec::new();
        for _ in 0..shards {
            let (addr, handle) = Server::bind("127.0.0.1:0", serve_options(optimize))
                .expect("bind backend")
                .spawn();
            backend_addrs.push(addr);
            handles.push(handle);
        }
        let (single_addr, handle) = Server::bind("127.0.0.1:0", serve_options(optimize))
            .expect("bind single daemon")
            .spawn();
        handles.push(handle);
        let router_options = RouterOptions {
            backends: backend_addrs.iter().map(SocketAddr::to_string).collect(),
            ..RouterOptions::default()
        };
        let (router_addr, handle) =
            Server::bind_router("127.0.0.1:0", serve_options(optimize), router_options)
                .expect("bind router")
                .spawn();
        handles.push(handle);
        Cluster {
            single: Client::connect(single_addr).unwrap(),
            router: Client::connect(router_addr).unwrap(),
            backends: backend_addrs
                .iter()
                .map(|addr| Client::connect(addr).unwrap())
                .collect(),
            handles,
        }
    }

    /// Sends the same raw request line to the router and the single
    /// daemon; returns both raw response lines.
    fn both(&mut self, line: &str) -> (String, String) {
        let router = self.router.request_line(line).expect("router response");
        let single = self.single.request_line(line).expect("single response");
        (router, single)
    }

    fn shutdown(mut self) {
        self.router.shutdown().unwrap();
        self.single.shutdown().unwrap();
        for backend in &mut self.backends {
            backend.shutdown().unwrap();
        }
        for handle in self.handles {
            handle.join().unwrap().unwrap();
        }
    }
}

/// A small mixed corpus as protocol lines: empty lines, short fixed
/// strings, random text over the formula alphabet, multi-byte UTF-8, and
/// a planted rare literal. The last line is non-empty (`str::lines`
/// cannot represent a trailing empty document).
fn corpus_lines(seed: u64) -> Vec<String> {
    let mut lines: Vec<String> = [
        "",
        "a",
        "ab",
        "bca",
        "abab",
        "",
        "β-reduction over αβγ",
        "naïve café décor",
        "aβb",
    ]
    .iter()
    .map(|t| t.to_string())
    .collect();
    for i in 0..6u64 {
        let doc = workloads::random_text(
            10 + (i as usize) * 3,
            b"abc",
            seed.wrapping_mul(31).wrapping_add(i),
        );
        lines.push(doc.text().to_string());
    }
    lines.push("prefix needle suffix".to_string());
    lines.push("aaneedlebb".to_string());
    lines
}

/// The `query_corpus` request line for `program` over `text`.
fn corpus_query(program: &str, text: Option<&str>) -> String {
    let mut fields = vec![
        ("op", Json::string("query_corpus")),
        ("program", Json::string(program)),
    ];
    if let Some(text) = text {
        fields.push(("text", Json::string(text)));
    }
    Json::object(fields).to_string()
}

/// What the in-process engine says `results` must be: one entry per
/// document with a non-empty relation, in corpus order, rendered with the
/// protocol's 1-based span convention.
fn expected_results(program: &str, lines: &[String], optimize: bool) -> Json {
    let options = if optimize {
        RaOptions::default()
    } else {
        RaOptions::unoptimized()
    };
    let prepared = PreparedQuery::prepare_with_options(program, options).expect("prepare");
    Json::Array(
        lines
            .iter()
            .enumerate()
            .filter_map(|(index, line)| {
                let doc = Document::new(line);
                let set = prepared.evaluate(&doc).expect("evaluate");
                (!set.is_empty()).then(|| {
                    Json::object([
                        ("line", Json::number(index)),
                        ("count", Json::number(set.len())),
                        ("mappings", mappings_to_json(&doc, &set)),
                    ])
                })
            })
            .collect(),
    )
}

/// A tiny deterministic generator for mutation scripts.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
        x
    }
}

/// 100 random programs through text-mode `query_corpus`: the router's
/// merged response is byte-identical to the single daemon's, cold and
/// cached, and both carry exactly the in-process results.
#[test]
fn router_text_queries_are_bit_identical_to_single_daemon() {
    for optimize in [true, false] {
        for shards in 1..=3usize {
            let mut cluster = Cluster::start(shards, optimize);
            for seed in (0..100u64).filter(|s| (s % 3) as usize + 1 == shards) {
                let RandomQlProgram { text: program, .. } = random_ql_program(cfg(seed), seed);
                let lines = corpus_lines(seed);
                let text = lines.join("\n");
                let line = corpus_query(&program, Some(&text));
                // Cold: nothing cached anywhere.
                let (router, single) = cluster.both(&line);
                assert_eq!(
                    router, single,
                    "seed {seed} shards {shards} optimize {optimize} (cold):\n{program}"
                );
                // Warm: every backend and the single daemon have the
                // program cached; the merged `cached` flag must agree.
                let (router, single) = cluster.both(&line);
                assert_eq!(
                    router, single,
                    "seed {seed} shards {shards} optimize {optimize} (warm):\n{program}"
                );
                let response = Json::parse(&router).unwrap();
                assert_eq!(
                    response.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "seed {seed}: {response}"
                );
                assert_eq!(
                    response.get("results").unwrap(),
                    &expected_results(&program, &lines, optimize),
                    "seed {seed} shards {shards} optimize {optimize}:\n{program}"
                );
            }
            cluster.shutdown();
        }
    }
}

/// Resident-store mode with a mutation interleave: load the corpus into
/// both deployments, then alternate seeded append/update/delete with
/// re-queries. Every mutation response and every query response must be
/// byte-identical between the router and the single daemon, and the
/// query results must match in-process evaluation of a scratch corpus
/// that replays the same mutations.
#[test]
fn router_resident_store_with_mutations_matches_single_daemon() {
    for optimize in [true, false] {
        for shards in 1..=3usize {
            let mut cluster = Cluster::start(shards, optimize);
            for seed in (0..60u64).filter(|s| (s % 3) as usize + 1 == shards) {
                let RandomQlProgram { text: program, .. } = random_ql_program(cfg(seed), seed);
                let mut scratch = corpus_lines(seed);
                let text = scratch.join("\n");

                // Load: the router partitions; topology aside, the
                // aggregate fields must match the single daemon.
                let load = Json::object([
                    ("op", Json::string("load_corpus")),
                    ("text", Json::string(&text)),
                ])
                .to_string();
                let (router, single) = cluster.both(&load);
                let (router, single) =
                    (Json::parse(&router).unwrap(), Json::parse(&single).unwrap());
                for field in ["ok", "documents", "bytes", "generation"] {
                    assert_eq!(
                        router.get(field),
                        single.get(field),
                        "seed {seed} shards {shards}: load `{field}` diverged"
                    );
                }

                let query = corpus_query(&program, None);
                let mut rng = XorShift(seed);
                for step in 0..4 {
                    // One seeded mutation, mirrored onto the scratch
                    // corpus exactly as the store defines it.
                    let mutation = match rng.next() % 3 {
                        0 => {
                            let line = format!("needle {seed} {step}");
                            scratch.push(line.clone());
                            Json::object([
                                ("op", Json::string("append_docs")),
                                ("text", Json::string(line)),
                            ])
                        }
                        1 => {
                            let id = (rng.next() % scratch.len() as u64) as usize;
                            let line = format!("ab{step} aβb");
                            scratch[id] = line.clone();
                            Json::object([
                                ("op", Json::string("update_doc")),
                                ("line", Json::number(id)),
                                ("text", Json::string(line)),
                            ])
                        }
                        _ => {
                            let ids: Vec<usize> = (0..1 + rng.next() % 2)
                                .map(|_| (rng.next() % scratch.len() as u64) as usize)
                                .collect();
                            for &id in &ids {
                                // A deleted slot is an empty document.
                                scratch[id] = String::new();
                            }
                            Json::object([
                                ("op", Json::string("delete_docs")),
                                (
                                    "lines",
                                    Json::Array(ids.iter().map(|&id| Json::number(id)).collect()),
                                ),
                            ])
                        }
                    };
                    let (router, single) = cluster.both(&mutation.to_string());
                    assert_eq!(
                        router, single,
                        "seed {seed} shards {shards} step {step}: mutation response diverged"
                    );

                    let (router, single) = cluster.both(&query);
                    assert_eq!(
                        router, single,
                        "seed {seed} shards {shards} optimize {optimize} step {step}:\n{program}"
                    );
                    let response = Json::parse(&router).unwrap();
                    assert_eq!(
                        response.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "seed {seed} step {step}: {response}"
                    );
                    assert_eq!(
                        response.get("results").unwrap(),
                        &expected_results(&program, &scratch, optimize),
                        "seed {seed} shards {shards} optimize {optimize} step {step}:\n{program}"
                    );
                }

                // Out-of-bounds mutations: the router validates against
                // its shard map and must render the exact daemon error.
                let bad_update = Json::object([
                    ("op", Json::string("update_doc")),
                    ("line", Json::number(scratch.len())),
                    ("text", Json::string("x")),
                ])
                .to_string();
                let (router, single) = cluster.both(&bad_update);
                assert_eq!(router, single, "seed {seed}: out-of-bounds update diverged");
                let bad_delete = Json::object([
                    ("op", Json::string("delete_docs")),
                    (
                        "lines",
                        Json::Array(vec![Json::number(0), Json::number(scratch.len())]),
                    ),
                ])
                .to_string();
                let (router, single) = cluster.both(&bad_delete);
                assert_eq!(router, single, "seed {seed}: out-of-bounds delete diverged");
                // The valid prefix was applied on both sides.
                scratch[0] = String::new();
            }
            cluster.shutdown();
        }
    }
}

/// Querying the resident store before any corpus is loaded renders the
/// exact daemon error through the router, and router `stats` names every
/// backend while staying answerable locally.
#[test]
fn router_error_mirroring_and_stats() {
    let mut cluster = Cluster::start(2, true);
    let (router, single) = cluster.both(&corpus_query("/{x:a+}/", None));
    assert_eq!(router, single, "no-corpus error must be byte-identical");

    let stats = cluster.router.stats().unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let router_section = stats.get("router").expect("router section");
    let backends = router_section
        .get("backends")
        .and_then(Json::as_array)
        .expect("backends array");
    assert_eq!(backends.len(), 2);
    // The single daemon reports no router section (JSON null).
    let single_stats = cluster.single.stats().unwrap();
    assert_eq!(single_stats.get("router"), Some(&Json::Null));
    cluster.shutdown();
}
