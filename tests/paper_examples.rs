//! Regression tests pinning the paper's worked examples.

use document_spanners::prelude::*;
use spanner_core::ByteClass;
use spanner_rgx::{
    is_disjunctive_functional, is_functional, is_sequential, to_disjunctive_functional,
};
use spanner_vset::{analysis, interpret, make_semi_functional, Label, Vsa};

/// Example 2.3: the sequential VA with the `q0 → q2` shortcut and its
/// equivalent regex formula `(Σ* x{Σ*} Σ*) ∨ Σ⁺`.
fn example_2_3_automaton() -> Vsa {
    let mut a = Vsa::new();
    let q1 = a.add_state();
    let q2 = a.add_state();
    a.add_transition(0, Label::Class(ByteClass::any()), 0);
    a.add_transition(0, Label::Open(Variable::new("x")), q1);
    a.add_transition(q1, Label::Class(ByteClass::any()), q1);
    a.add_transition(q1, Label::Close(Variable::new("x")), q2);
    a.add_transition(q2, Label::Class(ByteClass::any()), q2);
    a.add_transition(0, Label::Class(ByteClass::any()), q2);
    a.set_accepting(q2, true);
    a
}

#[test]
fn example_2_3_automaton_equals_its_regex_formula() {
    let a = example_2_3_automaton();
    assert!(analysis::is_sequential(&a));
    assert!(!analysis::is_functional(&a));
    let alpha = parse("(.*{x:.*}.*)|(.+)").unwrap();
    for text in ["", "a", "ab", "abc"] {
        let doc = Document::new(text);
        assert_eq!(
            interpret(&a, &doc),
            reference_eval(&alpha, &doc),
            "on {text:?}"
        );
    }
}

#[test]
fn example_2_2_alpha_name_is_sequential_not_functional() {
    // αname = (xfirst{δ} ␣ xlast{δ}) ∨ (xlast{δ})
    let alpha = parse(r"({xfirst:\u\l*} {xlast:\u\l*})|{xlast:\u\l*}").unwrap();
    assert!(is_sequential(&alpha));
    assert!(!is_functional(&alpha));
    assert!(is_disjunctive_functional(&alpha));

    let doc = Document::new("Pyotr Luzhin");
    let result = evaluate_rgx(&alpha, &doc).unwrap();
    // The full-document matches: either (first, last) or just last.
    assert!(result.iter().any(|m| {
        m.get(&"xfirst".into()).map(|s| doc.slice(s)) == Some("Pyotr")
            && m.get(&"xlast".into()).map(|s| doc.slice(s)) == Some("Luzhin")
    }));
}

#[test]
fn example_3_4_and_3_5_semi_functional_split() {
    // The extended configuration of q2 is `d`; the semi-functional transform
    // splits it into a closed copy and an unseen copy (4 states total).
    let a = example_2_3_automaton();
    let x = VarSet::from_iter(["x"]);
    assert!(!spanner_vset::is_semi_functional(&a, &x));
    let sf = make_semi_functional(&a, &x);
    assert!(spanner_vset::is_semi_functional(&sf.vsa, &x));
    assert_eq!(sf.vsa.state_count(), 4);
}

#[test]
fn section_3_2_containments() {
    // funcRGX ⊊ dfuncRGX ⊊ seqRGX, witnessed by the paper's own examples.
    let functional = parse("{x:.*}").unwrap();
    let dfunc_not_func = parse("{x:a}|{y:b}").unwrap();
    let seq_not_dfunc = parse("{z:.*}({x:.*}|{y:.*})").unwrap();

    assert!(is_functional(&functional));
    assert!(is_disjunctive_functional(&functional));

    assert!(!is_functional(&dfunc_not_func));
    assert!(is_disjunctive_functional(&dfunc_not_func));
    assert!(is_sequential(&dfunc_not_func));

    assert!(!is_disjunctive_functional(&seq_not_dfunc));
    assert!(is_sequential(&seq_not_dfunc));
}

#[test]
fn proposition_3_11_exponential_blowup_counts() {
    for n in 1..=8usize {
        let alpha = spanner_workloads::example_3_10_formula(n);
        let disjuncts = to_disjunctive_functional(&alpha, 1 << 16).unwrap();
        assert_eq!(disjuncts.len(), 1 << n, "n = {n}");
        // And semantics is preserved on a short document.
        let doc = Document::new("ab");
        assert_eq!(
            reference_eval(&Rgx::Union(disjuncts), &doc),
            reference_eval(&alpha, &doc)
        );
    }
}

#[test]
fn example_4_5_synchronization() {
    // (x{Σ*} ∨ ε)·y{Σ*} is synchronized for y but not for x — as a regex
    // formula and as the compiled automaton.
    let alpha = parse("({x:.*}|()){y:.*}").unwrap();
    assert!(spanner_rgx::is_synchronized_for(
        &alpha,
        &VarSet::from_iter(["y"])
    ));
    assert!(!spanner_rgx::is_synchronized_for(
        &alpha,
        &VarSet::from_iter(["x"])
    ));
    let a = compile(&alpha);
    assert!(spanner_vset::is_synchronized(&a, &VarSet::from_iter(["y"])));
    assert!(!spanner_vset::is_synchronized(
        &a,
        &VarSet::from_iter(["x"])
    ));
}

#[test]
fn proposition_4_7_witness_language() {
    // γ = (a·x{ε}·a) ∨ (b·x{ε}·b): the proof of Proposition 4.7 rests on
    // VγW(aa) ≠ ∅, VγW(bb) ≠ ∅, VγW(ab) = ∅, and on the specific spans below.
    let gamma = parse("(a{x:()}a)|(b{x:()}b)").unwrap();
    let eval = |text: &str| evaluate_rgx(&gamma, &Document::new(text)).unwrap();
    assert_eq!(eval("aa").len(), 1);
    assert_eq!(eval("bb").len(), 1);
    assert!(eval("ab").is_empty());
    let m = eval("aa").iter().next().unwrap().clone();
    assert_eq!(m.get(&"x".into()), Some(Span::new(2, 2)));
    // The compiled automaton is (of course) not synchronized for x.
    let a = compile(&gamma);
    assert!(!spanner_vset::is_synchronized(
        &a,
        &VarSet::from_iter(["x"])
    ));
}

#[test]
fn example_2_4_difference_on_figure_1() {
    // Vα_info \ α_UKmW(dStudents) keeps µ1 and µ2 (the .ru students) and
    // drops µ3 (Luzhin, whose mail ends in .uk).
    let doc = spanner_workloads::students_figure_1();
    let info = compile(&spanner_workloads::student_info_extractor().unwrap());
    let uk = compile(&spanner_workloads::uk_mail_extractor().unwrap());
    let kept = spanner_algebra::difference_product_eval(
        &info,
        &uk,
        &doc,
        spanner_algebra::DifferenceOptions::default(),
    )
    .unwrap();
    assert_eq!(kept.len(), 2);
    let lasts: Vec<&str> = kept
        .iter()
        .map(|m| doc.slice(m.get(&"last".into()).unwrap()))
        .collect();
    assert!(lasts.contains(&"Raskolnikov"));
    assert!(lasts.contains(&"Zosimov"));
    assert!(!lasts.contains(&"Luzhin"));
}

#[test]
fn example_5_1_and_5_4_ra_trees() {
    // π_{student}((sm ⋈ sp) \ nr) over a small corpus with recommendations,
    // with a regex leaf and with the black-box sentiment leaf. All facts
    // about a student live on the student's line, so the `student` spans of
    // the different extractors coincide (compatibility is about spans, not
    // about the extracted text).
    let doc = Document::new(
        "Ann ann@edu.ru 111 rec excellent work\nBob bob@edu.ru 222\nCid cid@edu.ru 333 rec average work\n",
    );
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let sm = parse(r"(.*\n)?{student:\u\l+} {mail:\l+@\l+\.\l+}.*").unwrap();
    let sp = parse(r"(.*\n)?{student:\u\l+} \l+@[\l\.]+ {phone:\d+}.*").unwrap();
    let nr = parse(r"(.*\n)?{student:\u\l+} [^\n]*rec {rec:[\l ]+}\n.*").unwrap();

    let inst = Instantiation::new()
        .with(0, sm.clone())
        .with(1, sp.clone())
        .with(2, nr);
    let no_rec = evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap();
    let names = |set: &MappingSet| -> Vec<String> {
        set.iter()
            .map(|m| doc.slice(m.get(&"student".into()).unwrap()).to_string())
            .collect()
    };
    // Bob has no recommendation at all.
    assert_eq!(names(&no_rec), vec!["Bob".to_string()]);

    // With the sentiment black box (Example 5.4): Cid's recommendation is not
    // positive, so both Bob and Cid remain.
    let inst_bb = Instantiation::new().with(0, sm).with(1, sp).with_black_box(
        2,
        SentimentSpanner::new("student", "posrec", SentimentSpanner::default_lexicon()),
    );
    let no_positive = evaluate_ra(&tree, &inst_bb, &doc, RaOptions::default()).unwrap();
    let mut got = names(&no_positive);
    got.sort();
    assert_eq!(got, vec!["Bob".to_string(), "Cid".to_string()]);
}
